(* The database layer: instantiation, reference evaluation and the
   budget-bounded join used by preprocessing. *)

open Stt_relation
open Stt_hypergraph
open Stt_core

let sorted r = List.sort compare (List.map Array.to_list (Relation.to_list r))

let small_db () =
  let db = Db.create () in
  Db.add_pairs db "R" [ (1, 2); (2, 3); (3, 4); (1, 3) ];
  db

let test_relation_instantiation () =
  let db = small_db () in
  let rel = Db.relation db { Cq.rel = "R"; vars = [ 5; 7 ] } in
  Alcotest.check Alcotest.int "cardinality" 4 (Relation.cardinal rel);
  Alcotest.check Alcotest.(list int) "schema is the atom's vars" [ 5; 7 ]
    (Schema.vars (Relation.schema rel));
  Alcotest.check_raises "unknown relation"
    (Invalid_argument "Db.relation: unknown relation Z") (fun () ->
      ignore (Db.relation db { Cq.rel = "Z"; vars = [ 0; 1 ] }))

let test_eval_2path () =
  let db = small_db () in
  let q = Cq.Library.k_path 2 in
  let result = Db.eval db q.Cq.cq in
  (* 2-paths: 1→2→3, 2→3→4, 1→3→4 ⇒ endpoint pairs (1,3), (2,4), (1,4) *)
  Alcotest.check
    Alcotest.(list (list int))
    "endpoint pairs"
    [ [ 1; 3 ]; [ 1; 4 ]; [ 2; 4 ] ]
    (sorted result)

let test_eval_access () =
  let db = small_db () in
  let q = Cq.Library.k_path 2 in
  let q_a =
    Relation.of_list (Schema.of_list [ 0; 2 ]) [ [| 1; 3 |]; [| 3; 1 |] ]
  in
  Alcotest.check
    Alcotest.(list (list int))
    "filtered by request"
    [ [ 1; 3 ] ]
    (sorted (Db.eval_access db q ~q_a))

let test_size () =
  let db = Db.create () in
  Db.add_pairs db "A" [ (1, 2) ];
  Db.add_pairs db "B" [ (1, 2); (3, 4) ];
  Alcotest.check Alcotest.int "max cardinality" 2 (Db.size db);
  Alcotest.check Alcotest.int "per relation" 1 (Db.cardinal db "A")

let test_mixed_arity_rejected () =
  let db = Db.create () in
  Alcotest.check_raises "mixed arities" (Invalid_argument "Db.add: mixed arities")
    (fun () -> Db.add db "R" [ [| 1 |]; [| 1; 2 |] ])

let rel_of schema tuples =
  Relation.of_list (Schema.of_list schema) (List.map Array.of_list tuples)

let test_bounded_join () =
  let a = rel_of [ 0; 1 ] (List.init 50 (fun i -> [ i / 10; i ])) in
  let b = rel_of [ 1; 2 ] (List.init 50 (fun i -> [ i; i mod 7 ])) in
  (* unbounded result *)
  let full = Db.join_greedy [ a; b ] ~keep:[ 0; 2 ] in
  (* a generous limit reproduces it *)
  (match Db.join_greedy_bounded [ a; b ] ~keep:[ 0; 2 ] ~limit:10_000 with
  | Some r ->
      Alcotest.check Alcotest.bool "same result" true (Relation.equal r full)
  | None -> Alcotest.fail "should fit");
  (* a tiny limit gives up *)
  match Db.join_greedy_bounded [ a; b ] ~keep:[ 0; 2 ] ~limit:3 with
  | None -> ()
  | Some _ -> Alcotest.fail "should exceed limit"

let test_bounded_join_explosive () =
  (* dense bipartite cross: the bound must trip during the join, without
     materializing the full product *)
  let a = rel_of [ 0; 1 ] (List.init 300 (fun i -> [ i; 0 ])) in
  let b = rel_of [ 1; 2 ] (List.init 300 (fun i -> [ 0; i ])) in
  match Db.join_greedy_bounded [ a; b ] ~keep:[ 0; 2 ] ~limit:1000 with
  | None -> ()
  | Some _ -> Alcotest.fail "90000-tuple product should exceed the limit"

let () =
  Alcotest.run "db"
    [
      ( "db",
        [
          Alcotest.test_case "instantiation" `Quick test_relation_instantiation;
          Alcotest.test_case "eval 2-path" `Quick test_eval_2path;
          Alcotest.test_case "eval access" `Quick test_eval_access;
          Alcotest.test_case "size" `Quick test_size;
          Alcotest.test_case "mixed arity" `Quick test_mixed_arity_rejected;
          Alcotest.test_case "bounded join" `Quick test_bounded_join;
          Alcotest.test_case "bounded join explosive" `Quick
            test_bounded_join_explosive;
        ] );
    ]
