(* The PANDA proof-step interpreter: running the paper's 2-reachability
   online sequence over real relations yields a superset of the true
   target (candidates), exact after guard filtering, within the size
   bound the inequality implies. *)

open Stt_relation
open Stt_hypergraph
open Stt_polymatroid
open Stt_core
open Stt_lp
open Stt_workload

let of_l = Varset.of_list

let rel schema tuples =
  Relation.of_list (Schema.of_list schema) (List.map Array.of_list tuples)

let sorted r = List.sort compare (List.map Array.to_list (Relation.to_list r))

(* inputs for the 2-reachability online rule: Q13(x1,x3), R1(x1,x2)
   light on x1, R2(x2,x3) light on x3 *)
let edges = Graphs.zipf_both ~seed:71 ~vertices:100 ~edges:1000 ~s:1.1

let r1 = rel [ 0; 1 ] (List.map (fun (a, b) -> [ a; b ]) edges)
let r2 = rel [ 1; 2 ] (List.map (fun (a, b) -> [ a; b ]) edges)

let run_online q13 =
  (* δ_T of E.6: h(01|0) + h(12|2) + 2·h(02) *)
  let state =
    Interp.init
      [
        ((of_l [ 0 ], of_l [ 0; 1 ]), Rat.one, r1);
        ((of_l [ 2 ], of_l [ 1; 2 ]), Rat.one, r2);
        ((Varset.empty, of_l [ 0; 2 ]), Rat.of_int 2, q13);
      ]
  in
  let entry = Paper_proofs.find "E.6 (2-reachability)" in
  match Interp.run state entry.Paper_proofs.seq_t with
  | Error e -> Alcotest.fail e
  | Ok final -> (
      match Interp.extract final (of_l [ 0; 1; 2 ]) with
      | None -> Alcotest.fail "no target term"
      | Some candidates -> candidates)

let test_candidates_cover_answer () =
  let q13 = rel [ 0; 2 ] [ [ 3; 7 ]; [ 1; 4 ]; [ 0; 0 ] ] in
  let candidates = run_online q13 in
  (* true T123 = Q ⋈ R1 ⋈ R2 *)
  let truth =
    Relation.natural_join (Relation.natural_join q13 r1) r2
    |> fun r -> Relation.project r [ 0; 1; 2 ]
  in
  Relation.iter
    (fun tup ->
      Alcotest.check Alcotest.bool "candidate covers answer" true
        (Relation.mem candidates tup))
    truth;
  (* after guard filtering the candidates are exact *)
  let filtered = Interp.filter_exact candidates ~guards:[ r1; r2; q13 ] in
  Alcotest.check Alcotest.(list (list int)) "exact after filtering"
    (sorted truth) (sorted filtered)

let test_candidate_size_bounded () =
  (* the inequality bounds |T123| by |Q|·max(deg) on either side; with a
     single probe tuple the candidates stay small even on a large graph *)
  let q13 = rel [ 0; 2 ] [ [ 5; 9 ] ] in
  let candidates = run_online q13 in
  let max_deg =
    max (Relation.max_degree r1 [ 0 ]) (Relation.max_degree r2 [ 2 ])
  in
  Alcotest.check Alcotest.bool
    (Printf.sprintf "|candidates| = %d <= 2·maxdeg = %d"
       (Relation.cardinal candidates) (2 * max_deg))
    true
    (Relation.cardinal candidates <= 2 * max_deg)

let test_weight_accounting () =
  (* withdrawing more weight than available fails *)
  let state =
    Interp.init [ ((Varset.empty, of_l [ 0; 1 ]), Rat.one, r1) ]
  in
  (match
     Interp.apply state
       {
         Proof.w = Rat.of_int 2;
         step = Proof.Mono { x = of_l [ 0 ]; y = of_l [ 0; 1 ] };
       }
   with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected weight failure");
  (* fractional split: half the weight remains usable *)
  match
    Interp.apply state
      {
        Proof.w = Rat.make 1 2;
        step = Proof.Mono { x = of_l [ 0 ]; y = of_l [ 0; 1 ] };
      }
  with
  | Error e -> Alcotest.fail e
  | Ok st -> (
      match
        Interp.apply st
          {
            Proof.w = Rat.make 1 2;
            step = Proof.Mono { x = of_l [ 1 ]; y = of_l [ 0; 1 ] };
          }
      with
      | Error e -> Alcotest.fail e
      | Ok st' ->
          Alcotest.check Alcotest.bool "both projections present" true
            (Interp.extract st' (of_l [ 0 ]) <> None
            && Interp.extract st' (of_l [ 1 ]) <> None))

let test_decomp_then_comp_roundtrip () =
  let state = Interp.init [ ((Varset.empty, of_l [ 0; 1 ]), Rat.one, r1) ] in
  let seq =
    [
      { Proof.w = Rat.one; step = Proof.Decomp { x = of_l [ 0 ]; y = of_l [ 0; 1 ] } };
      { Proof.w = Rat.one; step = Proof.Comp { x = of_l [ 0 ]; y = of_l [ 0; 1 ] } };
    ]
  in
  match Interp.run state seq with
  | Error e -> Alcotest.fail e
  | Ok final -> (
      match Interp.extract final (of_l [ 0; 1 ]) with
      | None -> Alcotest.fail "lost the relation"
      | Some r -> Alcotest.check Alcotest.bool "roundtrip identity" true
                    (Relation.equal r r1))

let test_paper_square_sequence_runs () =
  (* run the E.5 square online sequence over data end to end *)
  let entry = Paper_proofs.find "E.5 (square query)" in
  let q13 = rel [ 0; 2 ] [ [ 2; 8 ]; [ 4; 4 ] ] in
  let r41 = rel [ 0; 3 ] (List.map (fun (a, b) -> [ b; a ]) edges) in
  let r34 = rel [ 2; 3 ] (List.map (fun (a, b) -> [ a; b ]) edges) in
  let state =
    Interp.init
      [
        ((of_l [ 0 ], of_l [ 0; 3 ]), Rat.one, r41);
        ((of_l [ 2 ], of_l [ 2; 3 ]), Rat.one, r34);
        ((Varset.empty, of_l [ 0; 2 ]), Rat.of_int 2, q13);
      ]
  in
  match Interp.run state entry.Paper_proofs.seq_t with
  | Error e -> Alcotest.fail e
  | Ok final ->
      Alcotest.check Alcotest.bool "target term produced" true
        (Interp.extract final (of_l [ 0; 2; 3 ]) <> None)

let () =
  Alcotest.run "interp"
    [
      ( "panda steps",
        [
          Alcotest.test_case "candidates cover answer" `Quick
            test_candidates_cover_answer;
          Alcotest.test_case "candidate size bounded" `Quick
            test_candidate_size_bounded;
          Alcotest.test_case "weight accounting" `Quick test_weight_accounting;
          Alcotest.test_case "decomp/comp roundtrip" `Quick
            test_decomp_then_comp_roundtrip;
          Alcotest.test_case "square sequence runs" `Quick
            test_paper_square_sequence_runs;
        ] );
    ]
