(* Exact piecewise-linear curves: breakpoints of the 3-reachability
   combined curve and agreement with dense sampling. *)

open Stt_hypergraph
open Stt_decomp
open Stt_core
open Stt_lp

let rat = Alcotest.testable Rat.pp Rat.equal

let q3 = Cq.Library.k_path 3
let rules3 = Rule.generate q3 (Enum.pmtds q3)
let dc3 = Degree.default_dc q3.Cq.cq
let ac3 = Degree.default_ac q3

let combined3 =
  Curve.combined rules3 ~dc:dc3 ~ac:ac3 ~logq:Rat.zero ~lo:Rat.zero
    ~hi:(Rat.of_int 2)

let test_endpoints () =
  (* at S = 1 the best strategy is BFS-like: T = D; at S = D² everything
     is stored: T = 1 *)
  Alcotest.check (Alcotest.option rat) "T(1) = D" (Some Rat.one)
    (Curve.eval combined3 Rat.zero);
  Alcotest.check (Alcotest.option rat) "T(D²) = 1" (Some Rat.zero)
    (Curve.eval combined3 (Rat.of_int 2))

let test_monotone_decreasing () =
  List.iter
    (fun seg ->
      match Curve.slope seg with
      | Some s ->
          Alcotest.check Alcotest.bool "non-increasing" true (Rat.sign s <= 0)
      | None -> ())
    combined3

let test_matches_sampling () =
  List.iter
    (fun logs ->
      let sampled =
        List.fold_left
          (fun acc r ->
            match Jointflow.logt r ~dc:dc3 ~ac:ac3 ~logq:Rat.zero ~logs with
            | Some t -> Rat.max acc (Rat.max Rat.zero t)
            | None -> acc)
          Rat.zero rules3
      in
      Alcotest.check (Alcotest.option rat)
        (Printf.sprintf "curve(%s)" (Rat.to_string logs))
        (Some sampled)
        (Curve.eval combined3 logs))
    (Tradeoff.grid ~lo:Rat.zero ~hi:(Rat.of_int 2) ~steps:7)

let test_improvement_segment_present () =
  (* Figure 3a: somewhere between log S = 11/8 and 2 the curve lies
     strictly below the prior-art line 2 - logS *)
  let x = Rat.make 3 2 in
  match Curve.eval combined3 x with
  | Some t ->
      Alcotest.check Alcotest.bool "strictly better than S·T=D² at 3/2" true
        (Rat.compare t (Rat.sub (Rat.of_int 2) x) < 0)
  | None -> Alcotest.fail "curve undefined"

let test_segment_continuity () =
  let rec check = function
    | a :: (b :: _ as rest) ->
        Alcotest.check rat "contiguous" a.Curve.hi b.Curve.lo;
        Alcotest.check rat "continuous" a.Curve.hi_t b.Curve.lo_t;
        check rest
    | _ -> ()
  in
  check combined3

let test_eval_outside () =
  Alcotest.check (Alcotest.option rat) "outside range" None
    (Curve.eval combined3 (Rat.of_int 5))

let () =
  Alcotest.run "curve"
    [
      ( "combined 3-reach",
        [
          Alcotest.test_case "endpoints" `Quick test_endpoints;
          Alcotest.test_case "monotone" `Quick test_monotone_decreasing;
          Alcotest.test_case "matches sampling" `Quick test_matches_sampling;
          Alcotest.test_case "improvement segment" `Quick
            test_improvement_segment_present;
          Alcotest.test_case "continuity" `Quick test_segment_continuity;
          Alcotest.test_case "outside range" `Quick test_eval_outside;
        ] );
    ]
