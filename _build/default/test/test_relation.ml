(* Relational engine: operator unit tests, cost accounting, and
   randomized cross-checks of join/semijoin against nested loops. *)

open Stt_relation

let rel_of schema tuples =
  Relation.of_list (Schema.of_list schema) (List.map Array.of_list tuples)

let sorted_tuples r = List.sort compare (List.map Array.to_list (Relation.to_list r))

let check_tuples msg expected r =
  Alcotest.check
    Alcotest.(list (list int))
    msg
    (List.sort compare expected)
    (sorted_tuples r)

let test_schema () =
  let s = Schema.of_list [ 3; 1; 2 ] in
  Alcotest.check Alcotest.int "arity" 3 (Schema.arity s);
  Alcotest.check Alcotest.int "position" 2 (Schema.position s 2);
  Alcotest.check Alcotest.bool "mem" true (Schema.mem 1 s);
  Alcotest.check Alcotest.(list int) "inter order" [ 1; 2 ]
    (Schema.inter (Schema.of_list [ 1; 2 ]) s);
  Alcotest.check_raises "duplicates"
    (Invalid_argument "Schema.of_list: duplicate variable") (fun () ->
      ignore (Schema.of_list [ 1; 1 ]))

let test_dedup () =
  let r = rel_of [ 0; 1 ] [ [ 1; 2 ]; [ 1; 2 ]; [ 3; 4 ] ] in
  Alcotest.check Alcotest.int "dedup" 2 (Relation.cardinal r)

let test_project () =
  let r = rel_of [ 0; 1; 2 ] [ [ 1; 2; 3 ]; [ 1; 5; 3 ]; [ 2; 2; 3 ] ] in
  check_tuples "project 0 2" [ [ 1; 3 ]; [ 2; 3 ] ] (Relation.project r [ 0; 2 ]);
  check_tuples "project reorder" [ [ 3; 1 ]; [ 3; 2 ] ] (Relation.project r [ 2; 0 ]);
  check_tuples "project empty schema" [ [] ] (Relation.project r [])

let test_join () =
  let a = rel_of [ 0; 1 ] [ [ 1; 2 ]; [ 3; 4 ] ] in
  let b = rel_of [ 1; 2 ] [ [ 2; 7 ]; [ 2; 8 ]; [ 5; 9 ] ] in
  check_tuples "natural join" [ [ 1; 2; 7 ]; [ 1; 2; 8 ] ] (Relation.natural_join a b);
  (* join with no common vars = product *)
  let c = rel_of [ 5 ] [ [ 10 ]; [ 11 ] ] in
  Alcotest.check Alcotest.int "cross size" 4
    (Relation.cardinal (Relation.natural_join a c))

let test_semijoin_antijoin () =
  let a = rel_of [ 0; 1 ] [ [ 1; 2 ]; [ 3; 4 ]; [ 5; 6 ] ] in
  let b = rel_of [ 1; 2 ] [ [ 2; 7 ]; [ 6; 8 ] ] in
  check_tuples "semijoin" [ [ 1; 2 ]; [ 5; 6 ] ] (Relation.semijoin a b);
  check_tuples "antijoin" [ [ 3; 4 ] ] (Relation.antijoin a b)

let test_union () =
  let a = rel_of [ 0; 1 ] [ [ 1; 2 ] ] in
  let b = rel_of [ 1; 0 ] [ [ 2; 1 ]; [ 4; 3 ] ] in
  (* schemas are reordered on union *)
  check_tuples "union reorders" [ [ 1; 2 ]; [ 3; 4 ] ] (Relation.union a b)

let test_select () =
  let r = rel_of [ 0; 1 ] [ [ 1; 2 ]; [ 1; 3 ]; [ 2; 3 ] ] in
  check_tuples "select" [ [ 1; 2 ]; [ 1; 3 ] ] (Relation.select_eq r 0 1)

let test_degrees () =
  let r = rel_of [ 0; 1 ] [ [ 1; 2 ]; [ 1; 3 ]; [ 1; 4 ]; [ 2; 5 ] ] in
  Alcotest.check Alcotest.int "max degree" 3 (Relation.max_degree r [ 0 ]);
  let heavy, light = Relation.split_heavy_light r [ 0 ] ~threshold:2 in
  Alcotest.check Alcotest.int "heavy" 3 (Relation.cardinal heavy);
  Alcotest.check Alcotest.int "light" 1 (Relation.cardinal light);
  let degs = Relation.degrees r [ 0 ] in
  Alcotest.check Alcotest.int "degree of 1" 3
    (Option.value ~default:0 (Tuple.Tbl.find_opt degs [| 1 |]));
  Alcotest.check Alcotest.int "degree of 2" 1
    (Option.value ~default:0 (Tuple.Tbl.find_opt degs [| 2 |]))

let test_degrees_wide_tuples () =
  (* regression: the polymorphic hash samples only a prefix of long int
     arrays, so wide keys differing only in their tail used to collapse
     into degenerate buckets; [degrees] now keys with the full-width
     {!Tuple.hash}.  40-column keys, distinct only in the last column. *)
  let width = 40 in
  let vars = List.init width Fun.id in
  let groups = 32 and per_group = 3 in
  let tuples =
    List.concat
      (List.init groups (fun g ->
           List.init per_group (fun j ->
               List.init width (fun c ->
                   if c = width - 2 then g
                   else if c = width - 1 then j
                   else 7))))
  in
  let r = rel_of vars tuples in
  Alcotest.check Alcotest.int "all tuples kept" (groups * per_group)
    (Relation.cardinal r);
  (* key on everything except the final column: degree = per_group each *)
  let key = List.init (width - 1) Fun.id in
  let degs = Relation.degrees r key in
  Alcotest.check Alcotest.int "distinct wide keys" groups
    (Tuple.Tbl.length degs);
  Tuple.Tbl.iter
    (fun _ d -> Alcotest.check Alcotest.int "wide-key degree" per_group d)
    degs;
  Alcotest.check Alcotest.int "wide max degree" per_group
    (Relation.max_degree r key);
  let heavy, light = Relation.split_heavy_light r key ~threshold:per_group in
  Alcotest.check Alcotest.int "no heavy at threshold" 0
    (Relation.cardinal heavy);
  Alcotest.check Alcotest.int "all light" (groups * per_group)
    (Relation.cardinal light);
  let heavy, light =
    Relation.split_heavy_light r key ~threshold:(per_group - 1)
  in
  Alcotest.check Alcotest.int "all heavy below threshold"
    (groups * per_group) (Relation.cardinal heavy);
  Alcotest.check Alcotest.int "none light" 0 (Relation.cardinal light)

let test_index () =
  let r = rel_of [ 0; 1 ] [ [ 1; 2 ]; [ 1; 3 ]; [ 2; 3 ] ] in
  let idx = Index.build r [ 0 ] in
  Alcotest.check Alcotest.int "bucket size" 2 (List.length (Index.probe idx [| 1 |]));
  Alcotest.check Alcotest.bool "probe_mem hit" true (Index.probe_mem idx [| 2 |]);
  Alcotest.check Alcotest.bool "probe_mem miss" false (Index.probe_mem idx [| 9 |]);
  Alcotest.check Alcotest.int "count" 2 (Index.count idx [| 1 |]);
  Alcotest.check Alcotest.int "space" 3 (Index.space idx);
  (* index-side join and semijoin *)
  let probe = rel_of [ 0; 2 ] [ [ 1; 7 ]; [ 9; 8 ] ] in
  check_tuples "index semijoin" [ [ 1; 7 ] ] (Index.semijoin probe idx);
  check_tuples "index join" [ [ 1; 7; 2 ]; [ 1; 7; 3 ] ] (Index.join probe idx)

let test_cost_counting () =
  Cost.reset ();
  let r = rel_of [ 0; 1 ] [ [ 1; 2 ]; [ 3; 4 ] ] in
  ignore r;
  let snap = Cost.snapshot () in
  Alcotest.check Alcotest.bool "tuples charged" true (snap.Cost.tuples >= 2);
  (* counting off *)
  Cost.reset ();
  Cost.with_counting false (fun () ->
      ignore (rel_of [ 0; 1 ] [ [ 1; 2 ]; [ 3; 4 ] ]));
  Alcotest.check Alcotest.int "no charges when off" 0
    (Cost.total (Cost.snapshot ()));
  (* index probes are charged *)
  let idx = Index.build r [ 0 ] in
  Cost.reset ();
  ignore (Index.probe_mem idx [| 1 |]);
  Alcotest.check Alcotest.int "one probe" 1 (Cost.snapshot ()).Cost.probes

let test_measure () =
  let (), snap = Cost.measure (fun () -> Cost.charge_probe ()) in
  Alcotest.check Alcotest.int "measure captures" 1 snap.Cost.probes

exception Boom

let test_measure_reentrant () =
  (* a nested measure must not clobber the outer measurement: measure is
     snapshot-diff based, not reset based *)
  let (), outer =
    Cost.measure (fun () ->
        Cost.charge_probe ();
        let (), inner = Cost.measure (fun () -> Cost.charge_scan ()) in
        Alcotest.check Alcotest.int "inner scans" 1 inner.Cost.scans;
        Alcotest.check Alcotest.int "inner probes" 0 inner.Cost.probes;
        Cost.charge_tuple ())
  in
  Alcotest.check Alcotest.int "outer probes" 1 outer.Cost.probes;
  Alcotest.check Alcotest.int "outer tuples" 1 outer.Cost.tuples;
  (* the inner work happened while outer was measuring: it is included *)
  Alcotest.check Alcotest.int "outer scans" 1 outer.Cost.scans

let test_measure_no_leak_on_exception () =
  (* regression: a measure nested inside [with_counting false] must not
     leak a disabled (or force-enabled) counting state when its thunk
     raises *)
  Cost.set_counting true;
  (try
     Cost.with_counting false (fun () ->
         ignore (Cost.measure (fun () -> raise Boom));
         ())
   with Boom -> ());
  Alcotest.check Alcotest.bool "counting restored after exception" true
    (Cost.counting ());
  (* and the flag inside the outer scope is still respected afterwards *)
  Cost.reset ();
  (try
     Cost.with_counting false (fun () ->
         (try ignore (Cost.measure (fun () -> raise Boom)) with Boom -> ());
         (* back in the disabled scope: charges must be ignored *)
         Cost.charge_probe ())
   with Boom -> ());
  Alcotest.check Alcotest.int "disabled scope intact after nested raise" 0
    (Cost.total (Cost.snapshot ()))

let test_scoped () =
  (* scoped respects the current counting mode and never resets *)
  Cost.reset ();
  Cost.charge_probe ();
  let (), snap = Cost.scoped (fun () -> Cost.charge_scan ()) in
  Alcotest.check Alcotest.int "scoped scans" 1 snap.Cost.scans;
  Alcotest.check Alcotest.int "scoped excludes prior charges" 0 snap.Cost.probes;
  Alcotest.check Alcotest.int "global counters kept" 1
    (Cost.snapshot ()).Cost.probes;
  let (), off =
    Cost.with_counting false (fun () ->
        Cost.scoped (fun () -> Cost.charge_tuple ()))
  in
  Alcotest.check Alcotest.int "scoped under disabled counting" 0
    (Cost.total off)

(* randomized cross-check against nested-loop reference *)
let pairs_gen =
  QCheck2.Gen.(list_size (int_range 0 30) (pair (int_range 0 5) (int_range 0 5)))

let prop name gen f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count:300 gen f)

let ref_join a b =
  (* schemas [0;1] and [1;2] *)
  List.concat_map
    (fun (x, y) ->
      List.filter_map (fun (y', z) -> if y = y' then Some [ x; y; z ] else None) b)
    a
  |> List.sort_uniq compare

let qcheck_cases =
  [
    prop "join matches nested loops" (QCheck2.Gen.pair pairs_gen pairs_gen)
      (fun (a, b) ->
        let ra = rel_of [ 0; 1 ] (List.map (fun (x, y) -> [ x; y ]) a) in
        let rb = rel_of [ 1; 2 ] (List.map (fun (x, y) -> [ x; y ]) b) in
        sorted_tuples (Relation.natural_join ra rb) = ref_join a b);
    prop "semijoin = projection of join" (QCheck2.Gen.pair pairs_gen pairs_gen)
      (fun (a, b) ->
        let ra = rel_of [ 0; 1 ] (List.map (fun (x, y) -> [ x; y ]) a) in
        let rb = rel_of [ 1; 2 ] (List.map (fun (x, y) -> [ x; y ]) b) in
        sorted_tuples (Relation.semijoin ra rb)
        = sorted_tuples (Relation.project (Relation.natural_join ra rb) [ 0; 1 ]));
    prop "semijoin + antijoin partition" (QCheck2.Gen.pair pairs_gen pairs_gen)
      (fun (a, b) ->
        let ra = rel_of [ 0; 1 ] (List.map (fun (x, y) -> [ x; y ]) a) in
        let rb = rel_of [ 1; 2 ] (List.map (fun (x, y) -> [ x; y ]) b) in
        Relation.cardinal (Relation.semijoin ra rb)
        + Relation.cardinal (Relation.antijoin ra rb)
        = Relation.cardinal ra);
    prop "index join = natural join" (QCheck2.Gen.pair pairs_gen pairs_gen)
      (fun (a, b) ->
        let ra = rel_of [ 0; 1 ] (List.map (fun (x, y) -> [ x; y ]) a) in
        let rb = rel_of [ 1; 2 ] (List.map (fun (x, y) -> [ x; y ]) b) in
        let idx = Index.build rb [ 1 ] in
        sorted_tuples (Index.join ra idx)
        = sorted_tuples (Relation.natural_join ra rb));
  ]

let () =
  Alcotest.run "relation"
    [
      ( "unit",
        [
          Alcotest.test_case "schema" `Quick test_schema;
          Alcotest.test_case "dedup" `Quick test_dedup;
          Alcotest.test_case "project" `Quick test_project;
          Alcotest.test_case "join" `Quick test_join;
          Alcotest.test_case "semijoin/antijoin" `Quick test_semijoin_antijoin;
          Alcotest.test_case "union" `Quick test_union;
          Alcotest.test_case "select" `Quick test_select;
          Alcotest.test_case "degrees" `Quick test_degrees;
          Alcotest.test_case "degrees on wide tuples" `Quick
            test_degrees_wide_tuples;
          Alcotest.test_case "index" `Quick test_index;
          Alcotest.test_case "cost counting" `Quick test_cost_counting;
          Alcotest.test_case "measure" `Quick test_measure;
          Alcotest.test_case "measure re-entrant" `Quick test_measure_reentrant;
          Alcotest.test_case "measure no leak on exception" `Quick
            test_measure_no_leak_on_exception;
          Alcotest.test_case "scoped" `Quick test_scoped;
        ] );
      ("properties", qcheck_cases);
    ]
