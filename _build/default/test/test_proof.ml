(* Proof sequences: the paper's appendix sequences are encoded and
   machine-checked; malformed sequences are rejected; every valid proof
   sequence certifies a valid Shannon-flow inequality. *)

open Stt_hypergraph
open Stt_polymatroid
open Stt_lp

let of_l = Varset.of_list
let uncond c y = Cvec.unconditional c (of_l y)
let cond c x y = Cvec.term c ~x:(of_l x) ~y:(of_l y)
let ( ++ ) = Cvec.add
let r = Rat.of_int
let w1 = Rat.one

let test_step_vectors_nonpositive () =
  (* each rule vector f satisfies ⟨f, h⟩ <= 0 — check against the
     cardinality polymatroid and a coverage polymatroid *)
  let card = Setfun.create 4 (fun s -> r (Varset.cardinal s)) in
  let steps =
    [
      Proof.Submod { i = of_l [ 0; 1 ]; j = of_l [ 1; 2 ] };
      Proof.Mono { x = of_l [ 0 ]; y = of_l [ 0; 1 ] };
      Proof.Comp { x = of_l [ 0 ]; y = of_l [ 0; 1; 2 ] };
      Proof.Decomp { x = of_l [ 1 ]; y = of_l [ 1; 3 ] };
    ]
  in
  List.iter
    (fun st ->
      Alcotest.check Alcotest.bool "⟨f,h⟩ <= 0" true
        (Rat.compare (Cvec.dot_setfun (Proof.step_vector st) card) Rat.zero <= 0))
    steps

let test_step_validation () =
  Alcotest.check_raises "submod needs crossing"
    (Invalid_argument "Submod: need I ⊥ J") (fun () ->
      ignore
        (Proof.step_vector
           (Proof.Submod { i = of_l [ 0 ]; j = of_l [ 0; 1 ] })));
  Alcotest.check_raises "comp needs nonempty X"
    (Invalid_argument "Comp: need X ≠ ∅") (fun () ->
      ignore
        (Proof.step_vector (Proof.Comp { x = Varset.empty; y = of_l [ 0 ] })))

(* The paper's 2-reachability preprocessing proof (Section 5):
   h_S(1) + h_S(3) >= h_S(13), via submodularity then composition.
   In our 0-based ids: h(0) + h(2) >= h(02). *)
let test_2reach_preprocessing_sequence () =
  let delta = uncond w1 [ 0 ] ++ uncond w1 [ 2 ] in
  let lambda = uncond w1 [ 0; 2 ] in
  let seq =
    [
      (* submod I={0,2}, J={2}? need crossing I⊥J with
         h(I∪J|J) - h(I|I∩J): choose I = {0}, J = {2}:
         h(02|2) <= h(0|∅) — moves mass (∅,{0}) to ({2},{0,2}) *)
      { Proof.w = w1; step = Proof.Submod { i = of_l [ 0 ]; j = of_l [ 2 ] } };
      { Proof.w = w1; step = Proof.Comp { x = of_l [ 2 ]; y = of_l [ 0; 2 ] } };
    ]
  in
  Alcotest.check Alcotest.bool "checks" true (Proof.check ~delta ~lambda seq);
  (* and the certified inequality is indeed a Shannon flow *)
  Alcotest.check Alcotest.bool "flow valid" true
    (Flow.is_valid (Flow.make ~n:3 ~delta ~lambda))

(* The paper's 2-reachability online proof:
   h(1|0) + h(1|2) + 2h(02) >= 2h(012)  (0-based) *)
let test_2reach_online_sequence () =
  let delta =
    cond w1 [ 0 ] [ 0; 1 ] ++ cond w1 [ 2 ] [ 1; 2 ] ++ uncond (r 2) [ 0; 2 ]
  in
  let lambda = uncond (r 2) [ 0; 1; 2 ] in
  let seq =
    [
      (* submod: h(012|02) <= h(01|0) : I = {0,1}, J = {0,2} *)
      { Proof.w = w1; step = Proof.Submod { i = of_l [ 0; 1 ]; j = of_l [ 0; 2 ] } };
      (* submod: h(012|02) <= h(12|2) : I = {1,2}, J = {0,2} *)
      { Proof.w = w1; step = Proof.Submod { i = of_l [ 1; 2 ]; j = of_l [ 0; 2 ] } };
      (* compose twice: h(02) + h(012|02) -> h(012) *)
      { Proof.w = r 2; step = Proof.Comp { x = of_l [ 0; 2 ]; y = of_l [ 0; 1; 2 ] } };
    ]
  in
  Alcotest.check Alcotest.bool "checks" true (Proof.check ~delta ~lambda seq)

(* Example E.4, the triangle with empty access pattern: log D >= h_S(13)
   i.e. a pure monotonicity/decomposition proof h(01) >= h(0). *)
let test_monotonicity_proof () =
  let delta = uncond w1 [ 0; 1 ] in
  let lambda = uncond w1 [ 0 ] in
  let seq = [ { Proof.w = w1; step = Proof.Mono { x = of_l [ 0 ]; y = of_l [ 0; 1 ] } } ] in
  Alcotest.check Alcotest.bool "checks" true (Proof.check ~delta ~lambda seq)

let test_negative_intermediate_rejected () =
  (* applying composition without mass on (∅,X) must fail *)
  let delta = cond w1 [ 0 ] [ 0; 1 ] in
  let seq =
    [ { Proof.w = w1; step = Proof.Comp { x = of_l [ 0 ]; y = of_l [ 0; 1 ] } } ]
  in
  Alcotest.check Alcotest.bool "run fails" true (Proof.run delta seq = None)

let test_wrong_target_rejected () =
  let delta = uncond w1 [ 0 ] in
  let lambda = uncond w1 [ 0; 1 ] in
  Alcotest.check Alcotest.bool "no-op sequence misses target" false
    (Proof.check ~delta ~lambda [])

let test_negative_weight_rejected () =
  let delta = uncond w1 [ 0; 1 ] in
  let seq =
    [
      {
        Proof.w = Rat.minus_one;
        step = Proof.Mono { x = of_l [ 0 ]; y = of_l [ 0; 1 ] };
      };
    ]
  in
  Alcotest.check Alcotest.bool "negative weight fails" true
    (Proof.run delta seq = None)

(* property: random walks: generate random applicable
   steps from a random start; the final vector always certifies a valid
   Shannon flow inequality w.r.t. the start *)
let start_gen =
  QCheck2.Gen.(
    map
      (fun sets ->
        List.fold_left
          (fun acc s ->
            if Varset.is_empty s then acc
            else Cvec.add acc (Cvec.unconditional Rat.one s))
          Cvec.zero sets)
      (list_size (int_range 1 3)
         (map Varset.of_list (list_size (int_range 1 3) (int_range 0 2)))))

let random_walk delta rng_steps =
  (* apply a few random decomposition/composition/monotonicity steps *)
  List.fold_left
    (fun acc i ->
      match acc with
      | None -> None
      | Some d -> (
          let candidates =
            [
              Proof.Mono { x = of_l [ i mod 3 ]; y = Varset.full 3 };
              Proof.Decomp { x = of_l [ i mod 3 ]; y = Varset.full 3 };
              Proof.Comp { x = of_l [ i mod 3 ]; y = Varset.full 3 };
              Proof.Submod
                { i = of_l [ i mod 3 ]; j = of_l [ (i + 1) mod 3 ] };
            ]
          in
          let step = List.nth candidates (i mod 4) in
          match Proof.apply d { Proof.w = Rat.one; step } with
          | Some d' -> Some d'
          | None -> Some d))
    (Some delta) rng_steps

let qcheck_cases =
  [
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~name:"random walks certify valid flows" ~count:100
         (QCheck2.Gen.pair start_gen
            QCheck2.Gen.(list_size (int_range 0 6) (int_range 0 11)))
         (fun (delta, steps) ->
           match random_walk delta steps with
           | None -> false
           | Some final ->
               (* ⟨delta, h⟩ >= ⟨final, h⟩ must hold for all polymatroids *)
               Flow.is_valid (Flow.make ~n:3 ~delta ~lambda:final)));
  ]

(* --- automatic proof search (Theorem D.1, constructive) --- *)

let derives name delta lambda =
  match Proof.derive ~delta ~lambda () with
  | Some seq ->
      Alcotest.check Alcotest.bool (name ^ " checks") true
        (Proof.check ~delta ~lambda seq)
  | None -> Alcotest.failf "%s: no sequence found" name

let test_derive_paper_flows () =
  (* 2-reach preprocessing: h(0) + h(2) >= h(02) *)
  derives "2reach-pre"
    (uncond w1 [ 0 ] ++ uncond w1 [ 2 ])
    (uncond w1 [ 0; 2 ]);
  (* 2-reach online *)
  derives "2reach-online"
    (cond w1 [ 0 ] [ 0; 1 ] ++ cond w1 [ 2 ] [ 1; 2 ] ++ uncond (r 2) [ 0; 2 ])
    (uncond (r 2) [ 0; 1; 2 ]);
  (* monotone projection *)
  derives "mono" (uncond w1 [ 0; 1 ]) (uncond w1 [ 0 ]);
  (* E.7 ρ1 online: h(01|0) + h(23|3) + 2h(03) >= h(013) + h(023) *)
  derives "3reach-rho1"
    (cond w1 [ 0 ] [ 0; 1 ] ++ cond w1 [ 3 ] [ 2; 3 ] ++ uncond (r 2) [ 0; 3 ])
    (uncond w1 [ 0; 1; 3 ] ++ uncond w1 [ 0; 2; 3 ]);
  (* fractional: half of Shearer on the triangle:
     1/2·(h(01)+h(12)+h(02)) >= ... keep simple: decomposition round trip *)
  derives "decomp-comp"
    (uncond w1 [ 0; 1; 2 ])
    (uncond w1 [ 0 ] ++ cond w1 [ 0 ] [ 0; 1; 2 ])

let test_derive_fails_on_invalid () =
  (* h(0) >= h(01) is not a Shannon flow: the search must not "prove" it *)
  match
    Proof.derive ~max_depth:6 ~delta:(uncond w1 [ 0 ])
      ~lambda:(uncond w1 [ 0; 1 ])
      ()
  with
  | None -> ()
  | Some _ -> Alcotest.fail "derived an invalid inequality"

let test_derive_agrees_with_lp () =
  (* whatever derive produces must be a valid flow per the LP checker *)
  let cases =
    [
      (uncond w1 [ 0 ] ++ uncond w1 [ 2 ], uncond w1 [ 0; 2 ]);
      (uncond (r 2) [ 0; 1 ], uncond w1 [ 0 ] ++ uncond w1 [ 1 ]);
    ]
  in
  List.iter
    (fun (delta, lambda) ->
      match Proof.derive ~delta ~lambda () with
      | Some _ ->
          Alcotest.check Alcotest.bool "LP agrees" true
            (Flow.is_valid (Flow.make ~n:3 ~delta ~lambda))
      | None -> ())
    cases

let () =
  Alcotest.run "proof"
    [
      ( "steps",
        [
          Alcotest.test_case "vectors nonpositive" `Quick
            test_step_vectors_nonpositive;
          Alcotest.test_case "validation" `Quick test_step_validation;
        ] );
      ( "paper sequences",
        [
          Alcotest.test_case "2-reach preprocessing" `Quick
            test_2reach_preprocessing_sequence;
          Alcotest.test_case "2-reach online" `Quick test_2reach_online_sequence;
          Alcotest.test_case "triangle monotonicity" `Quick
            test_monotonicity_proof;
        ] );
      ( "rejection",
        [
          Alcotest.test_case "negative intermediate" `Quick
            test_negative_intermediate_rejected;
          Alcotest.test_case "wrong target" `Quick test_wrong_target_rejected;
          Alcotest.test_case "negative weight" `Quick
            test_negative_weight_rejected;
        ] );
      ( "search",
        [
          Alcotest.test_case "paper flows" `Quick test_derive_paper_flows;
          Alcotest.test_case "invalid not derived" `Quick
            test_derive_fails_on_invalid;
          Alcotest.test_case "agrees with LP" `Quick test_derive_agrees_with_lp;
        ] );
      ("properties", qcheck_cases);
    ]
