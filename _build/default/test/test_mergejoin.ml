(* Sort-merge backend: result-equivalence with the hash operators. *)

open Stt_relation

let rel_of schema tuples =
  Relation.of_list (Schema.of_list schema) (List.map Array.of_list tuples)

let sorted r = List.sort compare (List.map Array.to_list (Relation.to_list r))

let test_basic_join () =
  let a = rel_of [ 0; 1 ] [ [ 1; 2 ]; [ 3; 4 ]; [ 5; 2 ] ] in
  let b = rel_of [ 1; 2 ] [ [ 2; 7 ]; [ 2; 8 ]; [ 4; 9 ] ] in
  Alcotest.check
    Alcotest.(list (list int))
    "merge = hash"
    (sorted (Relation.natural_join a b))
    (sorted (Mergejoin.join a b))

let test_cross_product () =
  let a = rel_of [ 0 ] [ [ 1 ]; [ 2 ] ] in
  let b = rel_of [ 1 ] [ [ 7 ]; [ 8 ]; [ 9 ] ] in
  Alcotest.check Alcotest.int "cross size" 6
    (Relation.cardinal (Mergejoin.join a b))

let test_sort () =
  let a = rel_of [ 0; 1 ] [ [ 3; 1 ]; [ 1; 5 ]; [ 2; 2 ]; [ 1; 0 ] ] in
  let arr = Mergejoin.sort a ~by:[ 0 ] in
  let keys = Array.to_list (Array.map (fun t -> t.(0)) arr) in
  Alcotest.check Alcotest.(list int) "sorted by key" [ 1; 1; 2; 3 ] keys

let pairs_gen =
  QCheck2.Gen.(list_size (int_range 0 40) (pair (int_range 0 6) (int_range 0 6)))

let prop name f =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name ~count:300 (QCheck2.Gen.pair pairs_gen pairs_gen) f)

let qcheck_cases =
  [
    prop "join equivalence" (fun (a, b) ->
        let ra = rel_of [ 0; 1 ] (List.map (fun (x, y) -> [ x; y ]) a) in
        let rb = rel_of [ 1; 2 ] (List.map (fun (x, y) -> [ x; y ]) b) in
        sorted (Mergejoin.join ra rb) = sorted (Relation.natural_join ra rb));
    prop "semijoin equivalence" (fun (a, b) ->
        let ra = rel_of [ 0; 1 ] (List.map (fun (x, y) -> [ x; y ]) a) in
        let rb = rel_of [ 1; 2 ] (List.map (fun (x, y) -> [ x; y ]) b) in
        sorted (Mergejoin.semijoin ra rb) = sorted (Relation.semijoin ra rb));
    prop "join with two shared columns" (fun (a, b) ->
        let ra = rel_of [ 0; 1 ] (List.map (fun (x, y) -> [ x; y ]) a) in
        let rb = rel_of [ 0; 1 ] (List.map (fun (x, y) -> [ x; y ]) b) in
        (* identical schemas: join = intersection *)
        sorted (Mergejoin.join ra rb) = sorted (Relation.natural_join ra rb));
  ]

let () =
  Alcotest.run "mergejoin"
    [
      ( "unit",
        [
          Alcotest.test_case "basic join" `Quick test_basic_join;
          Alcotest.test_case "cross product" `Quick test_cross_product;
          Alcotest.test_case "sort" `Quick test_sort;
        ] );
      ("equivalence", qcheck_cases);
    ]
