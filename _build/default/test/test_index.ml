(* Direct tests for the flat-bucket hash index: build/probe/semijoin/
   join/space, plus the O(1) [count] behavior the rework guarantees. *)

open Stt_relation

let schema = Schema.of_list
let rel vars tuples = Relation.of_list (schema vars) tuples
let sorted r = List.sort compare (List.map Array.to_list (Relation.to_list r))

let sorted_tuples ts = List.sort compare (List.map Array.to_list ts)

let test_build_probe () =
  (* R(x0, x1, x2) indexed on x1: buckets group by the middle column *)
  let r =
    rel [ 0; 1; 2 ]
      [
        [| 1; 10; 100 |];
        [| 2; 10; 200 |];
        [| 3; 20; 300 |];
        [| 1; 10; 100 |];
        (* duplicate: relations deduplicate *)
      ]
  in
  let idx = Index.build r [ 1 ] in
  Alcotest.(check (list int)) "key vars" [ 1 ] (Index.key_vars idx);
  Alcotest.check Alcotest.int "space = indexed tuples" 3 (Index.space idx);
  Alcotest.(check (list (list int)))
    "bucket of 10"
    [ [ 1; 10; 100 ]; [ 2; 10; 200 ] ]
    (sorted_tuples (Index.probe idx [| 10 |]));
  Alcotest.(check (list (list int)))
    "bucket of 20"
    [ [ 3; 20; 300 ] ]
    (sorted_tuples (Index.probe idx [| 20 |]));
  Alcotest.(check (list (list int)))
    "missing key" [] (sorted_tuples (Index.probe idx [| 99 |]));
  Alcotest.check Alcotest.bool "probe_mem hit" true (Index.probe_mem idx [| 20 |]);
  Alcotest.check Alcotest.bool "probe_mem miss" false
    (Index.probe_mem idx [| 21 |])

let test_count () =
  let r =
    rel [ 0; 1 ]
      (List.init 50 (fun i -> [| (if i < 47 then 7 else i); i |]))
  in
  let idx = Index.build r [ 0 ] in
  Alcotest.check Alcotest.int "heavy key degree" 47 (Index.count idx [| 7 |]);
  Alcotest.check Alcotest.int "light key degree" 1 (Index.count idx [| 48 |]);
  Alcotest.check Alcotest.int "absent key degree" 0 (Index.count idx [| 999 |]);
  (* counting probes are charged like any other probe *)
  let (), snap = Cost.scoped (fun () -> ignore (Index.count idx [| 7 |])) in
  Alcotest.check Alcotest.int "one probe per count" 1 snap.Cost.probes

let test_count_constant_time () =
  (* O(1) count: time many lookups against a tiny bucket and a huge one;
     a bucket-walking implementation would be ~25000x slower on the huge
     bucket, the stored-length one is within noise (generous 20x gate) *)
  let n = 50_000 in
  let tuples =
    List.init n (fun i -> [| (if i < 2 then 1 else 2); i |])
  in
  let idx = Index.build (rel [ 0; 1 ] tuples) [ 0 ] in
  Alcotest.check Alcotest.int "small bucket" 2 (Index.count idx [| 1 |]);
  Alcotest.check Alcotest.int "huge bucket" (n - 2) (Index.count idx [| 2 |]);
  let time key =
    let reps = 100_000 in
    let t0 = Unix.gettimeofday () in
    for _ = 1 to reps do
      ignore (Index.count idx key)
    done;
    Unix.gettimeofday () -. t0
  in
  ignore (time [| 1 |]);
  (* warm up *)
  let small = time [| 1 |] and huge = time [| 2 |] in
  if huge > small *. 20.0 +. 0.005 then
    Alcotest.failf
      "count not O(1): %.4fs on a %d-tuple bucket vs %.4fs on a 2-tuple one"
      huge (n - 2) small

let test_semijoin () =
  let r = rel [ 0; 1 ] [ [| 1; 2 |]; [| 3; 4 |]; [| 5; 6 |] ] in
  let s = rel [ 1; 2 ] [ [| 2; 9 |]; [| 6; 9 |] ] in
  let idx = Index.build s [ 1 ] in
  Alcotest.(check (list (list int)))
    "semijoin keeps matching keys"
    [ [ 1; 2 ]; [ 5; 6 ] ]
    (sorted (Index.semijoin r idx));
  (* cost: one scan + one probe per probe-side tuple, nothing per stored
     tuple *)
  let (), snap = Cost.scoped (fun () -> ignore (Index.semijoin r idx)) in
  Alcotest.check Alcotest.int "semijoin scans" 3 snap.Cost.scans;
  Alcotest.check Alcotest.int "semijoin probes" 3 snap.Cost.probes

let test_join () =
  let r = rel [ 0; 1 ] [ [| 1; 2 |]; [| 3; 4 |] ] in
  let s = rel [ 1; 2 ] [ [| 2; 7 |]; [| 2; 8 |]; [| 4; 9 |]; [| 5; 0 |] ] in
  let idx = Index.build s [ 1 ] in
  let out = Index.join r idx in
  Alcotest.(check (list (list int)))
    "join extends with bucket rows"
    [ [ 1; 2; 7 ]; [ 1; 2; 8 ]; [ 3; 4; 9 ] ]
    (sorted out);
  Alcotest.(check (list int))
    "join schema starts with probe side" [ 0; 1; 2 ]
    (Schema.vars (Relation.schema out))

let test_multi_var_key () =
  (* composite key, key vars in non-schema order *)
  let r = rel [ 0; 1; 2 ] [ [| 1; 2; 3 |]; [| 1; 2; 4 |]; [| 9; 2; 3 |] ] in
  let idx = Index.build r [ 2; 0 ] in
  Alcotest.(check (list (list int)))
    "composite key (3, 1)"
    [ [ 1; 2; 3 ] ]
    (sorted_tuples (Index.probe idx [| 3; 1 |]));
  Alcotest.check Alcotest.int "composite count" 1 (Index.count idx [| 4; 1 |])

let test_empty_relation () =
  let idx = Index.build (rel [ 0; 1 ] []) [ 0 ] in
  Alcotest.check Alcotest.int "empty space" 0 (Index.space idx);
  Alcotest.(check (list (list int)))
    "empty probe" [] (sorted_tuples (Index.probe idx [| 1 |]));
  Alcotest.check Alcotest.int "empty count" 0 (Index.count idx [| 1 |])

let test_build_charges_nothing () =
  let r = rel [ 0; 1 ] (List.init 100 (fun i -> [| i; i |])) in
  let (), snap = Cost.scoped (fun () -> ignore (Index.build r [ 0 ])) in
  Alcotest.check Alcotest.int "building is preprocessing (free online)" 0
    (Cost.total snap)

let () =
  Alcotest.run "index"
    [
      ( "index",
        [
          Alcotest.test_case "build and probe" `Quick test_build_probe;
          Alcotest.test_case "count" `Quick test_count;
          Alcotest.test_case "count is O(1)" `Slow test_count_constant_time;
          Alcotest.test_case "semijoin" `Quick test_semijoin;
          Alcotest.test_case "join" `Quick test_join;
          Alcotest.test_case "multi-variable key" `Quick test_multi_var_key;
          Alcotest.test_case "empty relation" `Quick test_empty_relation;
          Alcotest.test_case "build charges nothing" `Quick
            test_build_charges_nothing;
        ] );
    ]
