(* Exact simplex and the LP model layer: unit LPs with known optima,
   duality checks, and randomized certificate verification. *)

open Stt_lp

let rat = Alcotest.testable Rat.pp Rat.equal
let r = Rat.of_int

let solve_expect_value m obj expected =
  match Lp.maximize m obj with
  | Lp.Solution s -> Alcotest.check rat "optimal value" expected s.Lp.value
  | Lp.Infeasible -> Alcotest.fail "unexpected infeasible"
  | Lp.Unbounded -> Alcotest.fail "unexpected unbounded"

let test_basic_max () =
  let m = Lp.create () in
  let x = Lp.var m "x" and y = Lp.var m "y" in
  ignore (Lp.add_le m [ (r 1, x); (r 1, y) ] (r 4));
  ignore (Lp.add_le m [ (r 1, x); (r 3, y) ] (r 6));
  solve_expect_value m [ (r 3, x); (r 2, y) ] (r 12)

let test_fractional_optimum () =
  (* max x + y st 2x + y <= 3, x + 2y <= 3 -> x = y = 1, but with
     objective x + 2y the optimum sits at a fractional vertex *)
  let m = Lp.create () in
  let x = Lp.var m "x" and y = Lp.var m "y" in
  ignore (Lp.add_le m [ (r 2, x); (r 1, y) ] (r 3));
  ignore (Lp.add_le m [ (r 1, x); (r 2, y) ] (r 3));
  solve_expect_value m [ (r 1, x); (r 1, y) ] (r 2)

let test_degenerate () =
  (* redundant constraints through the optimum; Bland must not cycle *)
  let m = Lp.create () in
  let x = Lp.var m "x" and y = Lp.var m "y" in
  ignore (Lp.add_le m [ (r 1, x) ] (r 1));
  ignore (Lp.add_le m [ (r 1, x); (r 1, y) ] (r 1));
  ignore (Lp.add_le m [ (r 2, x); (r 2, y) ] (r 2));
  ignore (Lp.add_le m [ (r 1, y) ] (r 1));
  solve_expect_value m [ (r 1, x); (r 1, y) ] (r 1)

let test_infeasible () =
  let m = Lp.create () in
  let x = Lp.var m "x" in
  ignore (Lp.add_le m [ (r 1, x) ] (r (-1)));
  match Lp.maximize m [ (r 1, x) ] with
  | Lp.Infeasible -> ()
  | _ -> Alcotest.fail "expected infeasible"

let test_unbounded () =
  let m = Lp.create () in
  let x = Lp.var m "x" in
  ignore (Lp.add_ge m [ (r 1, x) ] (r 1));
  match Lp.maximize m [ (r 1, x) ] with
  | Lp.Unbounded -> ()
  | _ -> Alcotest.fail "expected unbounded"

let test_equality_constraints () =
  (* max x + y st x + y = 2, x - y = 0 -> x = y = 1 *)
  let m = Lp.create () in
  let x = Lp.var m "x" and y = Lp.var m "y" in
  ignore (Lp.add_eq m [ (r 1, x); (r 1, y) ] (r 2));
  ignore (Lp.add_eq m [ (r 1, x); (r (-1), y) ] (r 0));
  (match Lp.maximize m [ (r 1, x); (r 1, y) ] with
  | Lp.Solution s ->
      Alcotest.check rat "x" (r 1) (s.Lp.primal x);
      Alcotest.check rat "y" (r 1) (s.Lp.primal y)
  | _ -> Alcotest.fail "expected solution")

let test_minimize_with_ge () =
  let m = Lp.create () in
  let x = Lp.var m "x" and y = Lp.var m "y" in
  let c1 = Lp.add_ge m [ (r 1, x); (r 2, y) ] (r 3) in
  let c2 = Lp.add_ge m [ (r 2, x); (r 1, y) ] (r 3) in
  match Lp.minimize m [ (r 1, x); (r 1, y) ] with
  | Lp.Solution s ->
      Alcotest.check rat "value" (r 2) s.Lp.value;
      (* strong duality: value = y1*3 + y2*3 *)
      let dual_value =
        Rat.add (Rat.mul (s.Lp.dual c1) (r 3)) (Rat.mul (s.Lp.dual c2) (r 3))
      in
      Alcotest.check rat "strong duality" s.Lp.value dual_value
  | _ -> Alcotest.fail "expected solution"

let test_duals_on_binding_rows () =
  let m = Lp.create () in
  let x = Lp.var m "x" and y = Lp.var m "y" in
  let c1 = Lp.add_le m [ (r 1, x); (r 1, y) ] (r 4) in
  let c2 = Lp.add_le m [ (r 1, x); (r 3, y) ] (r 6) in
  match Lp.maximize m [ (r 3, x); (r 2, y) ] with
  | Lp.Solution s ->
      Alcotest.check rat "dual c1" (r 3) (s.Lp.dual c1);
      Alcotest.check rat "dual c2" (r 0) (s.Lp.dual c2)
  | _ -> Alcotest.fail "expected solution"

let test_negative_rhs_phase1 () =
  (* x >= 2 encoded as -x <= -2, requires phase 1 *)
  let m = Lp.create () in
  let x = Lp.var m "x" in
  ignore (Lp.add_ge m [ (r 1, x) ] (r 2));
  ignore (Lp.add_le m [ (r 1, x) ] (r 5));
  solve_expect_value m [ (r 1, x) ] (r 5);
  (* minimization direction from the same kind of start *)
  let m2 = Lp.create () in
  let x2 = Lp.var m2 "x" in
  ignore (Lp.add_ge m2 [ (r 1, x2) ] (r 2));
  ignore (Lp.add_le m2 [ (r 1, x2) ] (r 5));
  match Lp.minimize m2 [ (r 1, x2) ] with
  | Lp.Solution s -> Alcotest.check rat "min value" (r 2) s.Lp.value
  | _ -> Alcotest.fail "expected solution"

(* Random LPs with a box constraint (always feasible and bounded):
   verify primal feasibility, dual feasibility and strong duality —
   a complete optimality certificate. *)
let lp_gen =
  QCheck2.Gen.(
    let* n = int_range 2 4 in
    let* m = int_range 2 5 in
    let coef = map Rat.of_int (int_range (-4) 4) in
    let* c = list_size (pure n) coef in
    let* rows =
      list_size (pure m)
        (pair (list_size (pure n) coef) (map Rat.of_int (int_range 0 8)))
    in
    pure (n, c, rows))

let certificate_check (n, c, rows) =
  let m = Lp.create () in
  let vars = List.init n (fun i -> Lp.var m (Printf.sprintf "x%d" i)) in
  let cids =
    List.map
      (fun (coeffs, rhs) -> (Lp.add_le m (List.combine coeffs vars) rhs, coeffs, rhs))
      rows
  in
  (* box: xi <= 10, keeps everything bounded *)
  let boxes =
    List.map (fun v -> (Lp.add_le m [ (Rat.one, v) ] (Rat.of_int 10), v)) vars
  in
  match Lp.maximize m (List.combine c vars) with
  | Lp.Infeasible -> false (* impossible: 0 is feasible *)
  | Lp.Unbounded -> false  (* impossible: boxed *)
  | Lp.Solution s ->
      let xs = List.map s.Lp.primal vars in
      let dot a b =
        List.fold_left2 (fun acc q x -> Rat.add acc (Rat.mul q x)) Rat.zero a b
      in
      (* primal feasibility *)
      List.for_all (fun ((_, coeffs, rhs)) -> Rat.compare (dot coeffs xs) rhs <= 0) cids
      && List.for_all (fun x -> Rat.sign x >= 0) xs
      (* objective matches *)
      && Rat.equal s.Lp.value (dot c xs)
      (* dual feasibility: y >= 0 and A^T y >= c *)
      && List.for_all (fun (cid, _, _) -> Rat.sign (s.Lp.dual cid) >= 0) cids
      && List.for_all (fun (b, _) -> Rat.sign (s.Lp.dual b) >= 0) boxes
      && List.for_all2
           (fun i ci ->
             let col =
               List.fold_left
                 (fun acc (cid, coeffs, _) ->
                   Rat.add acc (Rat.mul (s.Lp.dual cid) (List.nth coeffs i)))
                 Rat.zero cids
             in
             let box_dual = s.Lp.dual (fst (List.nth boxes i)) in
             Rat.compare (Rat.add col box_dual) ci >= 0)
           (List.init n Fun.id) c
      (* strong duality *)
      && Rat.equal s.Lp.value
           (Rat.add
              (List.fold_left
                 (fun acc (cid, _, rhs) ->
                   Rat.add acc (Rat.mul (s.Lp.dual cid) rhs))
                 Rat.zero cids)
              (List.fold_left
                 (fun acc (b, _) ->
                   Rat.add acc (Rat.mul (s.Lp.dual b) (Rat.of_int 10)))
                 Rat.zero boxes))

let qcheck_cases =
  [
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~name:"optimality certificates" ~count:200 lp_gen
         certificate_check);
  ]

let () =
  Alcotest.run "simplex"
    [
      ( "unit",
        [
          Alcotest.test_case "basic max" `Quick test_basic_max;
          Alcotest.test_case "fractional optimum" `Quick test_fractional_optimum;
          Alcotest.test_case "degenerate pivots" `Quick test_degenerate;
          Alcotest.test_case "infeasible" `Quick test_infeasible;
          Alcotest.test_case "unbounded" `Quick test_unbounded;
          Alcotest.test_case "equality" `Quick test_equality_constraints;
          Alcotest.test_case "minimize + ge + duality" `Quick test_minimize_with_ge;
          Alcotest.test_case "binding duals" `Quick test_duals_on_binding_rows;
          Alcotest.test_case "negative rhs phase 1" `Quick test_negative_rhs_phase1;
        ] );
      ("certificates", qcheck_cases);
    ]
