(* Online Yannakakis: the Appendix A worked example plus randomized
   equivalence with brute-force evaluation, and the no-S-scan guarantee. *)

open Stt_relation
open Stt_hypergraph
open Stt_decomp
open Stt_yannakakis
open Stt_core

let of_l = Varset.of_list

let rel schema tuples =
  Relation.of_list (Schema.of_list schema) (List.map Array.of_list tuples)

let sorted r = List.sort compare (List.map Array.to_list (Relation.to_list r))

(* 3-reachability with the middle PMTD of Figure 1: root T134, child S13 *)
let path3 = Cq.Library.k_path 3

let td_fig1 =
  Td.create
    (Rtree.create ~parent:[| -1; 0 |])
    [| of_l [ 0; 2; 3 ]; of_l [ 0; 1; 2 ] |]

let pmtd_mid = Pmtd.create_exn path3 td_fig1 ~materialized:[| false; true |]

let test_3reach_mid_pmtd () =
  (* graph: 1->2->3->4 and 1->5->3; S13 = {(1,3)} (2-paths),
     T134 over {x1,x3,x4} online *)
  let s13 = rel [ 0; 2 ] [ [ 1; 3 ] ] in
  let pre = Online_yannakakis.preprocess pmtd_mid ~s_views:(fun _ -> s13) in
  Alcotest.check Alcotest.int "space" 1 (Online_yannakakis.space pre);
  (* T-view for the root: tuples over (x1, x3, x4) such that R(x3,x4) —
     computed online; here from edges 3->4 with candidate x1 = 1 *)
  let t134 = rel [ 0; 2; 3 ] [ [ 1; 3; 4 ]; [ 9; 3; 4 ] ] in
  let q_a = rel [ 0; 3 ] [ [ 1; 4 ]; [ 2; 4 ] ] in
  let result =
    Online_yannakakis.answer pre ~t_views:(fun _ -> t134) ~q_a
  in
  Alcotest.check Alcotest.(list (list int)) "only (1,4)" [ [ 1; 4 ] ]
    (sorted result)

(* randomized: the engine-level exact views through one PMTD must agree
   with brute force *)
let eval_via_pmtd db (cqap : Cq.cqap) pmtd q_a =
  (* exact views: projections of the full body join *)
  let full =
    Db.eval db
      (Cq.create
         ~var_names:cqap.Cq.cq.Cq.var_names
         ~head:(Varset.full cqap.Cq.cq.Cq.n)
         cqap.Cq.cq.Cq.atoms)
  in
  let view node =
    Cost.with_counting false (fun () ->
        Relation.project full
          (Varset.to_list (Pmtd.view pmtd node).Pmtd.vars))
  in
  let pre = Online_yannakakis.preprocess pmtd ~s_views:view in
  Online_yannakakis.answer pre ~t_views:view ~q_a

let digraph_gen =
  QCheck2.Gen.(
    list_size (int_range 0 60) (pair (int_range 0 9) (int_range 0 9)))

let prop name gen f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count:60 gen f)

let pmtds3 = Enum.pmtds path3

let qcheck_cases =
  [
    prop "every 3-reach PMTD computes the access CQ"
      (QCheck2.Gen.pair digraph_gen
         (QCheck2.Gen.list_size (QCheck2.Gen.int_range 1 5)
            (QCheck2.Gen.pair (QCheck2.Gen.int_range 0 9) (QCheck2.Gen.int_range 0 9))))
      (fun (edges, requests) ->
        let db = Db.create () in
        Db.add_pairs db "R" edges;
        Db.mem db "R"
        |> fun has_r ->
        QCheck2.assume has_r;
        let q_a =
          Relation.of_list
            (Schema.of_list [ 0; 3 ])
            (List.map (fun (a, b) -> [| a; b |]) requests)
        in
        let expected = sorted (Db.eval_access db path3 ~q_a) in
        List.for_all
          (fun pmtd ->
            sorted (eval_via_pmtd db path3 pmtd q_a) = expected)
          pmtds3);
  ]

(* the S-views must never be scanned online: answering with a huge S-view
   must cost no more than with a tiny one *)
let test_no_s_scan () =
  let big_s13 =
    rel [ 0; 2 ] (List.init 5000 (fun i -> [ (i * 13) mod 4999; i ]))
  in
  let t134 = rel [ 0; 2; 3 ] [ [ 1; 3; 4 ] ] in
  let q_a = rel [ 0; 3 ] [ [ 1; 4 ] ] in
  let pre_big = Online_yannakakis.preprocess pmtd_mid ~s_views:(fun _ -> big_s13) in
  let small_s13 = rel [ 0; 2 ] [ [ 1; 3 ] ] in
  let pre_small =
    Online_yannakakis.preprocess pmtd_mid ~s_views:(fun _ -> small_s13)
  in
  let cost_of pre =
    let _, snap =
      Cost.measure (fun () ->
          ignore (Online_yannakakis.answer pre ~t_views:(fun _ -> t134) ~q_a))
    in
    Cost.total snap
  in
  let big_cost = cost_of pre_big and small_cost = cost_of pre_small in
  Alcotest.check Alcotest.bool
    (Printf.sprintf "big %d <= small %d + slack" big_cost small_cost)
    true
    (big_cost <= small_cost + 5)

let () =
  Alcotest.run "yannakakis"
    [
      ( "unit",
        [
          Alcotest.test_case "Figure-1 middle PMTD" `Quick test_3reach_mid_pmtd;
          Alcotest.test_case "no S-view scans online" `Quick test_no_s_scan;
        ] );
      ("equivalence", qcheck_cases);
    ]
