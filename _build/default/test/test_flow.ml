(* Shannon-flow inequalities: LP verification of classic inequalities and
   rejection of false ones, with violating-polymatroid witnesses. *)

open Stt_hypergraph
open Stt_polymatroid
open Stt_lp

let of_l = Varset.of_list
let uncond c y = Cvec.unconditional (Rat.of_int c) (of_l y)
let cond c x y = Cvec.term (Rat.of_int c) ~x:(of_l x) ~y:(of_l y)
let ( ++ ) = Cvec.add

let test_shearer_triangle () =
  (* h(01) + h(12) + h(02) >= 2 h(012): Shearer's lemma *)
  let delta = uncond 1 [ 0; 1 ] ++ uncond 1 [ 1; 2 ] ++ uncond 1 [ 0; 2 ] in
  let lambda = uncond 2 [ 0; 1; 2 ] in
  Alcotest.check Alcotest.bool "valid" true
    (Flow.is_valid (Flow.make ~n:3 ~delta ~lambda))

let test_submodularity_instance () =
  (* h(01) + h(12) >= h(012) + h(1) *)
  let delta = uncond 1 [ 0; 1 ] ++ uncond 1 [ 1; 2 ] in
  let lambda = uncond 1 [ 0; 1; 2 ] ++ uncond 1 [ 1 ] in
  Alcotest.check Alcotest.bool "valid" true
    (Flow.is_valid (Flow.make ~n:3 ~delta ~lambda))

let test_monotonicity_instance () =
  let delta = uncond 1 [ 0; 1 ] in
  let lambda = uncond 1 [ 0 ] in
  Alcotest.check Alcotest.bool "valid" true
    (Flow.is_valid (Flow.make ~n:2 ~delta ~lambda))

let test_conditional_composition () =
  (* h(0) + h(01|0) >= h(01) *)
  let delta = uncond 1 [ 0 ] ++ cond 1 [ 0 ] [ 0; 1 ] in
  let lambda = uncond 1 [ 0; 1 ] in
  Alcotest.check Alcotest.bool "valid" true
    (Flow.is_valid (Flow.make ~n:2 ~delta ~lambda))

let test_two_path_flow () =
  (* the paper's 2-reachability inequality, T-side:
     h(1|0) + h(1|2) + 2h(02) >= 2h(012) *)
  let delta =
    cond 1 [ 0 ] [ 0; 1 ] ++ cond 1 [ 2 ] [ 1; 2 ] ++ uncond 2 [ 0; 2 ]
  in
  let lambda = uncond 2 [ 0; 1; 2 ] in
  Alcotest.check Alcotest.bool "valid" true
    (Flow.is_valid (Flow.make ~n:3 ~delta ~lambda))

let test_invalid_rejected () =
  (* h(0) + h(1) >= h(01) + h(0 ∩ 1 = ∅ part)… strengthen to something
     false: h(01) >= 2 h(0) fails (take h = cardinality) *)
  let delta = uncond 1 [ 0; 1 ] in
  let lambda = uncond 2 [ 0 ] in
  let flow = Flow.make ~n:2 ~delta ~lambda in
  Alcotest.check Alcotest.bool "invalid" false (Flow.is_valid flow);
  match Flow.violating_polymatroid flow with
  | None -> Alcotest.fail "expected witness"
  | Some h ->
      Alcotest.check Alcotest.bool "witness is polymatroid" true
        (Setfun.is_polymatroid h);
      Alcotest.check Alcotest.bool "witness violates" true
        (Rat.compare
           (Cvec.dot_setfun delta h)
           (Cvec.dot_setfun lambda h)
        < 0)

let test_shearer_rejected_when_weakened () =
  (* only two of the three triangle edges do NOT cover twice *)
  let delta = uncond 1 [ 0; 1 ] ++ uncond 1 [ 1; 2 ] in
  let lambda = uncond 2 [ 0; 1; 2 ] in
  Alcotest.check Alcotest.bool "invalid" false
    (Flow.is_valid (Flow.make ~n:3 ~delta ~lambda))

let test_implied_bound () =
  let q = Stt_hypergraph.Cq.Library.k_path 2 in
  let dc = Degree.default_dc q.Cq.cq in
  let delta = uncond 1 [ 0; 1 ] ++ uncond 1 [ 1; 2 ] in
  let flow = Flow.make ~n:3 ~delta ~lambda:(uncond 1 [ 0; 1; 2 ]) in
  (match Flow.implied_bound flow dc with
  | Some b ->
      Alcotest.check
        (Alcotest.testable Rat.pp Rat.equal)
        "2 log D" (Rat.of_int 2) b.Degree.d
  | None -> Alcotest.fail "expected bound");
  (* missing constraint -> None *)
  match Flow.implied_bound flow [ List.hd dc ] with
  | None -> ()
  | Some _ -> Alcotest.fail "expected None"

(* property: random small inequalities — validity is exactly the absence
   of a violating polymatroid witness *)
let coeff_gen =
  QCheck2.Gen.(
    list_size (int_range 1 3)
      (pair
         (map Varset.of_list (list_size (int_range 1 3) (int_range 0 2)))
         (int_range 1 2)))

let qcheck_cases =
  [
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~name:"validity iff no witness" ~count:100
         (QCheck2.Gen.pair coeff_gen coeff_gen)
         (fun (dl, ll) ->
           let to_vec l =
             List.fold_left
               (fun acc (s, c) ->
                 if Varset.is_empty s then acc
                 else Cvec.add acc (Cvec.unconditional (Rat.of_int c) s))
               Cvec.zero l
           in
           let flow = Flow.make ~n:3 ~delta:(to_vec dl) ~lambda:(to_vec ll) in
           Flow.is_valid flow = Option.is_none (Flow.violating_polymatroid flow)));
  ]

let () =
  Alcotest.run "flow"
    [
      ( "valid inequalities",
        [
          Alcotest.test_case "Shearer triangle" `Quick test_shearer_triangle;
          Alcotest.test_case "submodularity" `Quick test_submodularity_instance;
          Alcotest.test_case "monotonicity" `Quick test_monotonicity_instance;
          Alcotest.test_case "composition" `Quick test_conditional_composition;
          Alcotest.test_case "2-path flow" `Quick test_two_path_flow;
        ] );
      ( "invalid inequalities",
        [
          Alcotest.test_case "rejected with witness" `Quick test_invalid_rejected;
          Alcotest.test_case "weakened Shearer rejected" `Quick
            test_shearer_rejected_when_weakened;
        ] );
      ( "implied bound",
        [ Alcotest.test_case "reads constraints" `Quick test_implied_bound ] );
      ("properties", qcheck_cases);
    ]
