(* Randomized differential testing: the full pipeline (PMTD enumeration,
   disjunctive rules, 2PP preprocessing, Online Yannakakis) against the
   brute-force reference evaluator, over 200 random CQAP instances.

   Each instance draws a random small query (≤ 5 variables), a random
   database (≤ 64 tuples per relation over a small domain), a random
   access request set and a random space budget; the engine's answer must
   match [Db.eval_access] tuple-for-tuple, and the stored space must stay
   under the budget-implied bound

     Engine.space ≤ (Σ_p #s_views p) × (Σ_ρ stored_subproblems ρ × budget).

   Everything is derived from a fixed base seed, so a failure report's
   seed reproduces the instance exactly. *)

open Stt_relation
open Stt_hypergraph
open Stt_decomp
open Stt_core
open Stt_workload

let sorted r = List.sort compare (List.map Array.to_list (Relation.to_list r))

type instance = {
  seed : int;
  cqap : Cq.cqap;
  db : Db.t;
  q_a : Relation.t;
  budget : int;
}

let budgets = [| 1; 2; 4; 16; 256; 100_000 |]

let gen_instance seed =
  let rng = Rng.create seed in
  let nvars = 1 + Rng.int rng 5 in
  let natoms = 1 + Rng.int rng 4 in
  let pick_vars k =
    let arr = Array.init nvars Fun.id in
    Rng.shuffle rng arr;
    Array.to_list (Array.sub arr 0 k)
  in
  let atoms =
    List.init natoms (fun i ->
        let arity = 1 + Rng.int rng (min 3 nvars) in
        { Cq.rel = Printf.sprintf "R%d" i; vars = pick_vars arity })
  in
  (* every variable must occur in some atom: cover leftovers with unary
     atoms *)
  let covered =
    List.fold_left
      (fun acc a -> Varset.union acc (Cq.atom_vars a))
      Varset.empty atoms
  in
  let missing = Varset.diff (Varset.full nvars) covered in
  let atoms =
    atoms
    @ List.mapi
        (fun j v -> { Cq.rel = Printf.sprintf "M%d" j; vars = [ v ] })
        (Varset.to_list missing)
  in
  let random_subset () =
    Varset.filter (fun _ -> Rng.bool rng) (Varset.full nvars)
  in
  let var_names = Array.init nvars (Printf.sprintf "x%d") in
  let cq = Cq.create ~var_names ~head:(random_subset ()) atoms in
  let cqap = Cq.with_access cq (random_subset ()) in
  let dom = 1 + Rng.int rng 8 in
  let db = Db.create () in
  List.iter
    (fun (a : Cq.atom) ->
      let arity = List.length a.Cq.vars in
      let n = Rng.int rng 17 in
      Db.add db a.Cq.rel
        (List.init n (fun _ -> Array.init arity (fun _ -> Rng.int rng dom))))
    atoms;
  let access = Varset.to_list cqap.Cq.access in
  let q_a =
    let schema = Schema.of_list access in
    match List.length access with
    | 0 -> Relation.of_list schema [ [||] ]
    | k ->
        Relation.of_list schema
          (List.init
             (1 + Rng.int rng 8)
             (fun _ -> Array.init k (fun _ -> Rng.int rng dom)))
  in
  let budget = budgets.(Rng.int rng (Array.length budgets)) in
  { seed; cqap; db; q_a; budget }

(* ------------------------------------------------------------------ *)
(* building an index for an instance                                    *)
(* ------------------------------------------------------------------ *)

exception Skip of string

(* The engine's correctness guarantee (union of ψ_i over the PMTDs it
   was built with) holds for any non-empty PMTD subset, so we cap the
   set at 6 to keep the rule cartesian product tractable on adversarial
   random queries.  A budget too small for some rule without T-targets
   is escalated — the comparison then runs at the budget actually
   used. *)
let build_index inst =
  let pmtds =
    try Enum.pmtds ~max_pmtds:4096 inst.cqap
    with Failure msg -> raise (Skip ("pmtd enumeration: " ^ msg))
  in
  let pmtds = List.filteri (fun i _ -> i < 6) pmtds in
  let rec go budget attempts =
    if attempts = 0 then raise (Skip "no feasible budget")
    else
      try (Engine.build inst.cqap pmtds ~db:inst.db ~budget, budget)
      with Failure _ -> go (budget * 64) (attempts - 1)
  in
  go inst.budget 5

let space_bound idx ~budget =
  let s_nodes =
    List.fold_left
      (fun acc p -> acc + List.length (Pmtd.s_views p))
      0 (Engine.pmtds idx)
  in
  let stored_tuples =
    List.fold_left
      (fun acc s -> acc + (Twopp.stored_subproblems s * budget))
      0 (Engine.structures idx)
  in
  s_nodes * stored_tuples

(* ------------------------------------------------------------------ *)
(* the harness                                                          *)
(* ------------------------------------------------------------------ *)

let n_instances = 200
let base_seed = 0xC0FFEE

let pp_tuples fmt ts =
  Format.fprintf fmt "{%s}"
    (String.concat "; "
       (List.map
          (fun t -> "(" ^ String.concat "," (List.map string_of_int t) ^ ")")
          ts))

let run_one i =
  let rec attempt k =
    let seed = base_seed + (1000 * i) + k in
    let inst = gen_instance seed in
    match build_index inst with
    | exception Skip reason ->
        if k >= 20 then
          Alcotest.failf "instance %d: no buildable query after %d tries (%s)"
            i (k + 1) reason
        else attempt (k + 1)
    | idx, used_budget ->
        let expected = sorted (Db.eval_access inst.db inst.cqap ~q_a:inst.q_a) in
        let got = sorted (Engine.answer idx ~q_a:inst.q_a) in
        if got <> expected then
          Alcotest.failf
            "instance %d (seed %d): engine disagrees with reference@\n\
             query: %a@\n\
             budget: %d (used %d)@\n\
             expected %a@\ngot      %a"
            i seed Cq.pp_cqap inst.cqap inst.budget used_budget pp_tuples
            expected pp_tuples got;
        let bound = space_bound idx ~budget:used_budget in
        if Engine.space idx > bound then
          Alcotest.failf
            "instance %d (seed %d): space %d exceeds budget-implied bound %d \
             (budget %d)"
            i seed (Engine.space idx) bound used_budget
  in
  attempt 0

let test_differential () =
  for i = 0 to n_instances - 1 do
    run_one i
  done

let () =
  Alcotest.run "differential"
    [
      ( "differential",
        [
          Alcotest.test_case
            (Printf.sprintf "%d random instances vs reference" n_instances)
            `Slow test_differential;
        ] );
    ]
