(* Bit-set variable sets. *)

open Stt_hypergraph

let vs = Alcotest.testable Varset.pp Varset.equal
let of_l = Varset.of_list

let test_basic () =
  Alcotest.check vs "of_list" (Varset.add 2 (Varset.singleton 0)) (of_l [ 0; 2 ]);
  Alcotest.check Alcotest.int "cardinal" 3 (Varset.cardinal (of_l [ 1; 3; 5 ]));
  Alcotest.check Alcotest.bool "mem" true (Varset.mem 3 (of_l [ 1; 3 ]));
  Alcotest.check Alcotest.bool "not mem" false (Varset.mem 2 (of_l [ 1; 3 ]));
  Alcotest.check vs "full 3" (of_l [ 0; 1; 2 ]) (Varset.full 3);
  Alcotest.check vs "remove" (of_l [ 1 ]) (Varset.remove 3 (of_l [ 1; 3 ]));
  Alcotest.check Alcotest.int "choose least" 1 (Varset.choose (of_l [ 4; 1; 3 ]));
  Alcotest.check_raises "choose empty" Not_found (fun () ->
      ignore (Varset.choose Varset.empty))

let test_algebra () =
  let a = of_l [ 0; 1; 2 ] and b = of_l [ 1; 2; 3 ] in
  Alcotest.check vs "union" (of_l [ 0; 1; 2; 3 ]) (Varset.union a b);
  Alcotest.check vs "inter" (of_l [ 1; 2 ]) (Varset.inter a b);
  Alcotest.check vs "diff" (of_l [ 0 ]) (Varset.diff a b);
  Alcotest.check Alcotest.bool "subset" true (Varset.subset (of_l [ 1 ]) a);
  Alcotest.check Alcotest.bool "not subset" false (Varset.subset b a);
  Alcotest.check Alcotest.bool "strict subset" true
    (Varset.strict_subset (of_l [ 0; 1 ]) a);
  Alcotest.check Alcotest.bool "not strict (equal)" false
    (Varset.strict_subset a a);
  Alcotest.check Alcotest.bool "crossing" true (Varset.crossing a b);
  Alcotest.check Alcotest.bool "not crossing" false
    (Varset.crossing (of_l [ 0 ]) a);
  Alcotest.check Alcotest.bool "disjoint" true
    (Varset.disjoint (of_l [ 0 ]) (of_l [ 1 ]))

let test_subsets () =
  let subs = Varset.subsets (of_l [ 0; 2 ]) in
  Alcotest.check Alcotest.int "count" 4 (List.length subs);
  Alcotest.check Alcotest.bool "contains empty" true
    (List.exists Varset.is_empty subs);
  Alcotest.check Alcotest.bool "contains self" true
    (List.exists (Varset.equal (of_l [ 0; 2 ])) subs);
  Alcotest.check Alcotest.int "subsets of empty" 1
    (List.length (Varset.subsets Varset.empty))

let test_bounds () =
  Alcotest.check_raises "negative var"
    (Invalid_argument "Varset: variable out of [0, 62]") (fun () ->
      ignore (Varset.singleton (-1)));
  Alcotest.check_raises "var 63"
    (Invalid_argument "Varset: variable out of [0, 62]") (fun () ->
      ignore (Varset.singleton 63))

let set_gen =
  QCheck2.Gen.(map Varset.of_list (list_size (int_range 0 8) (int_range 0 15)))

let prop name gen f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count:500 gen f)

let qcheck_cases =
  [
    prop "to_list roundtrip" set_gen (fun s ->
        Varset.equal s (Varset.of_list (Varset.to_list s)));
    prop "to_list sorted distinct" set_gen (fun s ->
        let l = Varset.to_list s in
        l = List.sort_uniq compare l);
    prop "union cardinality" (QCheck2.Gen.pair set_gen set_gen) (fun (a, b) ->
        Varset.cardinal (Varset.union a b)
        = Varset.cardinal a + Varset.cardinal b
          - Varset.cardinal (Varset.inter a b));
    prop "diff disjoint from b" (QCheck2.Gen.pair set_gen set_gen)
      (fun (a, b) -> Varset.disjoint (Varset.diff a b) b);
    prop "subsets count" set_gen (fun s ->
        QCheck2.assume (Varset.cardinal s <= 8);
        List.length (Varset.subsets s) = 1 lsl Varset.cardinal s);
    prop "subset iff inter" (QCheck2.Gen.pair set_gen set_gen) (fun (a, b) ->
        Varset.subset a b = Varset.equal (Varset.inter a b) a);
  ]

let () =
  Alcotest.run "varset"
    [
      ( "unit",
        [
          Alcotest.test_case "basic" `Quick test_basic;
          Alcotest.test_case "algebra" `Quick test_algebra;
          Alcotest.test_case "subsets" `Quick test_subsets;
          Alcotest.test_case "bounds" `Quick test_bounds;
        ] );
      ("properties", qcheck_cases);
    ]
