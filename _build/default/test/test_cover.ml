(* Fractional edge covers, slack and the Section 6.2/6.3 tradeoffs. *)

open Stt_hypergraph
open Stt_core
open Stt_lp

let rat = Alcotest.testable Rat.pp Rat.equal
let tr = Alcotest.testable Tradeoff.pp Tradeoff.equal
let of_l = Varset.of_list

let test_min_cover_triangle () =
  let hg = Cq.hypergraph Cq.Library.triangle_detect.Cq.cq in
  match Cover.min_fractional_cover hg ~of_:(Varset.full 3) with
  | Some u ->
      Alcotest.check rat "weight 3/2" (Rat.make 3 2) (Cover.total_weight u)
  | None -> Alcotest.fail "cover expected"

let test_min_cover_path () =
  let hg = Cq.hypergraph (Cq.Library.k_path 3).Cq.cq in
  match Cover.min_fractional_cover hg ~of_:(Varset.full 4) with
  | Some u -> Alcotest.check rat "weight 2" (Rat.of_int 2) (Cover.total_weight u)
  | None -> Alcotest.fail "cover expected"

let test_no_cover () =
  let hg = Hypergraph.create ~n:2 [ of_l [ 0 ]; of_l [ 1 ] ] in
  (* vertex 2 out of range of edges: ask to cover a variable beyond *)
  match Cover.min_fractional_cover hg ~of_:(of_l [ 0; 1 ]) with
  | Some _ -> ()
  | None -> Alcotest.fail "cover of existing vars expected"

let test_slack_example_6_2 () =
  (* k-Set Disjointness with u_j = 1 on each of the k edges: slack k *)
  List.iter
    (fun k ->
      let q = Cq.Library.k_set_disjointness k in
      let hg = Cq.hypergraph q.Cq.cq in
      let u = List.map (fun f -> (f, Rat.one)) hg.Hypergraph.edges in
      match Cover.slack u ~a:q.Cq.access ~over:(Varset.full (k + 1)) with
      | Some a -> Alcotest.check rat "slack k" (Rat.of_int k) a
      | None -> Alcotest.fail "slack expected")
    [ 2; 3; 4 ]

let test_theorem_6_1_k_set () =
  (* Example 6.2: S·T^k ≅ Q^k·D^k *)
  List.iter
    (fun k ->
      let q = Cq.Library.k_set_disjointness k in
      let hg = Cq.hypergraph q.Cq.cq in
      let u = List.map (fun f -> (f, Rat.one)) hg.Hypergraph.edges in
      Alcotest.check tr
        (Printf.sprintf "k=%d" k)
        (Tradeoff.make ~s_exp:Rat.one ~t_exp:(Rat.of_int k)
           ~d_exp:(Rat.of_int k) ~q_exp:(Rat.of_int k))
        (Cover.theorem_6_1 q ~u))
    [ 2; 3 ]

let test_theorem_6_1_auto () =
  let q = Cq.Library.k_set_disjointness 2 in
  let t = Cover.theorem_6_1_auto q in
  (* the auto cover must recover at least the slack-2 tradeoff *)
  Alcotest.check rat "t_exp = 2" (Rat.of_int 2)
    (Rat.div t.Tradeoff.t_exp t.Tradeoff.s_exp)

let test_theorem_6_1_rejects_non_cover () =
  let q = Cq.Library.k_set_disjointness 2 in
  Alcotest.check_raises "not a cover"
    (Invalid_argument "theorem_6_1: not a fractional edge cover") (fun () ->
      ignore (Cover.theorem_6_1 q ~u:[]))

let test_example_6_3 () =
  (* 4-reachability via the TD {x1,x2,x4,x5} -> {x2,x3,x4}:
     S^{3/2}·T ≅ Q·D³ *)
  let q = Cq.Library.k_path 4 in
  let e i j = of_l [ i; j ] in
  let bag1 =
    {
      Cover.bag = of_l [ 0; 1; 3; 4 ];
      a_t = of_l [ 0; 4 ];
      u = [ (e 0 1, Rat.one); (e 3 4, Rat.one) ];
    }
  in
  let bag2 =
    {
      Cover.bag = of_l [ 1; 2; 3 ];
      a_t = of_l [ 1; 3 ];
      u = [ (e 1 2, Rat.one); (e 2 3, Rat.one) ];
    }
  in
  let t = Cover.path_tradeoff q [ bag1; bag2 ] in
  Alcotest.check tr "S^{3/2}·T ≅ Q·D³"
    (Tradeoff.make ~s_exp:(Rat.make 3 2) ~t_exp:Rat.one ~d_exp:(Rat.of_int 3)
       ~q_exp:Rat.one)
    t

let test_k_reach_prior_tradeoff () =
  (* Section 6.3 + [12]: the framework recovers S·T^{2/(k-1)} ≅ D²·(...)
     via the root-to-leaf path of the natural decomposition; check k = 3
     with bags {x1,x2,x4} -> {x2,x3,x4} *)
  let q = Cq.Library.k_path 3 in
  let e i j = of_l [ i; j ] in
  let bag1 =
    {
      Cover.bag = of_l [ 0; 1; 3 ];
      a_t = of_l [ 0; 3 ];
      u = [ (e 0 1, Rat.one); (e 2 3, Rat.one) ];
    }
  in
  let bag2 =
    {
      Cover.bag = of_l [ 1; 2; 3 ];
      a_t = of_l [ 1; 3 ];
      u = [ (e 1 2, Rat.one); (e 2 3, Rat.one) ];
    }
  in
  let t = Cover.path_tradeoff q [ bag1; bag2 ] in
  (* slack of bag1 w.r.t {x1,x4}: covers x2 once → α1 = 1;
     slack of bag2 w.r.t {x2,x4}: covers x3 twice → α2 = 2;
     S^{1+1/2}·T ≅ Q·D^{2+1} — the S·T^{2/3}-family line for k=3 *)
  Alcotest.check tr "S^{3/2}·T ≅ Q·D³"
    (Tradeoff.make ~s_exp:(Rat.make 3 2) ~t_exp:Rat.one ~d_exp:(Rat.of_int 3)
       ~q_exp:Rat.one)
    t

let () =
  Alcotest.run "cover"
    [
      ( "covers",
        [
          Alcotest.test_case "triangle min cover" `Quick test_min_cover_triangle;
          Alcotest.test_case "path min cover" `Quick test_min_cover_path;
          Alcotest.test_case "degenerate cover" `Quick test_no_cover;
          Alcotest.test_case "slack (Ex 6.2)" `Quick test_slack_example_6_2;
        ] );
      ( "tradeoffs",
        [
          Alcotest.test_case "Theorem 6.1 k-set" `Quick test_theorem_6_1_k_set;
          Alcotest.test_case "Theorem 6.1 auto" `Quick test_theorem_6_1_auto;
          Alcotest.test_case "rejects non-cover" `Quick
            test_theorem_6_1_rejects_non_cover;
          Alcotest.test_case "Example 6.3" `Quick test_example_6_3;
          Alcotest.test_case "3-reach path tradeoff" `Quick
            test_k_reach_prior_tradeoff;
        ] );
    ]
