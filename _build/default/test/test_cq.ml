(* CQ / CQAP model, hypergraphs and degree constraints. *)

open Stt_hypergraph
open Stt_lp

let vs = Alcotest.testable Varset.pp Varset.equal

let test_create_validations () =
  Alcotest.check_raises "repeated var in atom"
    (Invalid_argument "Cq.create: repeated variable in atom") (fun () ->
      ignore
        (Cq.create ~var_names:[| "x"; "y" |] ~head:Varset.empty
           [ { Cq.rel = "R"; vars = [ 0; 0 ] } ]));
  Alcotest.check_raises "uncovered variable"
    (Invalid_argument "Cq.create: variable in no atom") (fun () ->
      ignore
        (Cq.create ~var_names:[| "x"; "y" |] ~head:Varset.empty
           [ { Cq.rel = "R"; vars = [ 0 ] } ]))

let test_k_path () =
  let q = Cq.Library.k_path 3 in
  Alcotest.check Alcotest.int "4 variables" 4 q.Cq.cq.Cq.n;
  Alcotest.check Alcotest.int "3 atoms" 3 (List.length q.Cq.cq.Cq.atoms);
  Alcotest.check vs "access = endpoints" (Varset.of_list [ 0; 3 ]) q.Cq.access;
  Alcotest.check vs "head = access" (Varset.of_list [ 0; 3 ]) q.Cq.cq.Cq.head;
  Alcotest.check Alcotest.bool "acyclic" true (Cq.is_acyclic q.Cq.cq)

let test_access_normalization () =
  (* H ⊉ A is normalized by enlarging the head *)
  let cq =
    Cq.create ~var_names:[| "x"; "y" |] ~head:Varset.empty
      [ { Cq.rel = "R"; vars = [ 0; 1 ] } ]
  in
  let cqap = Cq.with_access cq (Varset.singleton 0) in
  Alcotest.check vs "head now contains access" (Varset.singleton 0)
    cqap.Cq.cq.Cq.head

let test_set_disjointness () =
  let q = Cq.Library.k_set_disjointness 3 in
  Alcotest.check Alcotest.int "vars" 4 q.Cq.cq.Cq.n;
  Alcotest.check vs "access" (Varset.of_list [ 0; 1; 2 ]) q.Cq.access;
  Alcotest.check vs "head" (Varset.of_list [ 0; 1; 2 ]) q.Cq.cq.Cq.head;
  let qi = Cq.Library.k_set_intersection 3 in
  Alcotest.check vs "intersection head keeps y" (Varset.of_list [ 0; 1; 2; 3 ])
    qi.Cq.cq.Cq.head

let test_hierarchical_detection () =
  Alcotest.check Alcotest.bool "binary-tree query" true
    (Cq.is_hierarchical Cq.Library.hierarchical_binary.Cq.cq);
  Alcotest.check Alcotest.bool "set disjointness" true
    (Cq.is_hierarchical (Cq.Library.k_set_disjointness 2).Cq.cq);
  Alcotest.check Alcotest.bool "path not hierarchical" false
    (Cq.is_hierarchical (Cq.Library.k_path 3).Cq.cq)

let test_acyclicity () =
  Alcotest.check Alcotest.bool "triangle cyclic" false
    (Cq.is_acyclic Cq.Library.triangle_detect.Cq.cq);
  Alcotest.check Alcotest.bool "square cyclic" false
    (Cq.is_acyclic Cq.Library.square.Cq.cq);
  Alcotest.check Alcotest.bool "hierarchical acyclic" true
    (Cq.is_acyclic Cq.Library.hierarchical_binary.Cq.cq);
  Alcotest.check Alcotest.bool "paths acyclic" true
    (Cq.is_acyclic (Cq.Library.k_path 5).Cq.cq)

let test_hypergraph () =
  let q = Cq.Library.k_path 2 in
  let hg = Cq.hypergraph q.Cq.cq in
  Alcotest.check Alcotest.bool "connected" true (Hypergraph.is_connected hg);
  Alcotest.check Alcotest.bool "covers edge" true
    (Hypergraph.covers hg (Varset.of_list [ 0; 1 ]));
  Alcotest.check Alcotest.bool "does not cover {0,2}" false
    (Hypergraph.covers hg (Varset.of_list [ 0; 2 ]));
  Alcotest.check Alcotest.int "edges of var 1" 2
    (List.length (Hypergraph.edges_containing hg 1));
  Alcotest.check_raises "isolated vertex"
    (Invalid_argument "Hypergraph.create: isolated vertex") (fun () ->
      ignore (Hypergraph.create ~n:3 [ Varset.of_list [ 0; 1 ] ]))

let test_degree_constraints () =
  let q = Cq.Library.k_path 3 in
  let dc = Degree.default_dc q.Cq.cq in
  Alcotest.check Alcotest.int "one cardinality per hyperedge" 3
    (List.length dc);
  List.iter
    (fun (c : Degree.t) ->
      Alcotest.check Alcotest.bool "is cardinality" true (Degree.is_cardinality c);
      Alcotest.check (Alcotest.testable Rat.pp Rat.equal) "bound d" Rat.one
        c.Degree.bound.Degree.d)
    dc;
  let ac = Degree.default_ac q in
  Alcotest.check Alcotest.int "one access constraint" 1 (List.length ac);
  let q2 = Cq.Library.k_set_disjointness 2 in
  Alcotest.check Alcotest.int "two constraints" 2
    (List.length (Degree.default_dc q2.Cq.cq))

let test_splits () =
  let q = Cq.Library.k_path 2 in
  let splits = Degree.splits (Degree.default_dc q.Cq.cq) in
  (* per binary edge {a,b}: (a, ab) and (b, ab) *)
  Alcotest.check Alcotest.int "four splits" 4 (List.length splits);
  List.iter
    (fun (s : Degree.split) ->
      Alcotest.check Alcotest.bool "x strict subset of y" true
        (Varset.strict_subset s.Degree.sx s.Degree.sy))
    splits

let test_dedup () =
  let c1 = Degree.cardinality (Varset.of_list [ 0; 1 ]) Degree.logsize_d in
  let c2 =
    Degree.cardinality (Varset.of_list [ 0; 1 ])
      (Degree.logsize_scale (Rat.make 1 2) Degree.logsize_d)
  in
  let deduped = Degree.dedup [ c1; c2 ] in
  Alcotest.check Alcotest.int "kept one" 1 (List.length deduped);
  let kept = List.hd deduped in
  Alcotest.check (Alcotest.testable Rat.pp Rat.equal) "kept the smaller"
    (Rat.make 1 2) kept.Degree.bound.Degree.d

let () =
  Alcotest.run "cq"
    [
      ( "cq",
        [
          Alcotest.test_case "create validations" `Quick test_create_validations;
          Alcotest.test_case "k-path" `Quick test_k_path;
          Alcotest.test_case "access normalization" `Quick test_access_normalization;
          Alcotest.test_case "set disjointness" `Quick test_set_disjointness;
          Alcotest.test_case "hierarchical detection" `Quick test_hierarchical_detection;
          Alcotest.test_case "acyclicity" `Quick test_acyclicity;
          Alcotest.test_case "hypergraph" `Quick test_hypergraph;
        ] );
      ( "degree",
        [
          Alcotest.test_case "defaults" `Quick test_degree_constraints;
          Alcotest.test_case "splits" `Quick test_splits;
          Alcotest.test_case "dedup best-constraint" `Quick test_dedup;
        ] );
    ]
