(* The executable 2PP: budget compliance, model coverage (every answer
   tuple is witnessed by stored S-targets or online T-targets), and
   storage behaviour across budgets. *)

open Stt_relation
open Stt_hypergraph
open Stt_decomp
open Stt_core
open Stt_workload

let path2 = Cq.Library.k_path 2
let rule2 = List.hd (Rule.generate path2 (Enum.pmtds path2))

let db_of edges =
  let db = Db.create () in
  Db.add_pairs db "R" edges;
  db

let skewed = Graphs.zipf_both ~seed:11 ~vertices:200 ~edges:2000 ~s:1.1

let test_budget_respected_per_target () =
  List.iter
    (fun budget ->
      let s = Twopp.build rule2 ~db:(db_of skewed) ~budget in
      (* each stored S-target union stays within a small factor of the
         budget (one slice per subproblem) *)
      List.iter
        (fun (_, rel) ->
          Alcotest.check Alcotest.bool
            (Printf.sprintf "budget %d, stored %d" budget
               (Relation.cardinal rel))
            true
            (Relation.cardinal rel <= 4 * budget))
        (Twopp.s_targets s))
    [ 50; 500; 5000 ]

let test_more_budget_fewer_delegations () =
  let delegated budget =
    Twopp.delegated_subproblems (Twopp.build rule2 ~db:(db_of skewed) ~budget)
  in
  Alcotest.check Alcotest.bool "monotone-ish" true
    (delegated 1_000_000 <= delegated 50)

let test_model_coverage () =
  (* union of stored S13 and online T123 projections must cover the true
     answer of the access CQ *)
  let db = db_of skewed in
  let s = Twopp.build rule2 ~db ~budget:800 in
  let q_a =
    Relation.of_list
      (Schema.of_list [ 0; 2 ])
      (List.init 50 (fun i -> [| i * 3 mod 200; i * 7 mod 200 |]))
  in
  let truth = Db.eval_access db path2 ~q_a in
  let stored = Twopp.s_targets s in
  let online = Twopp.online s ~q_a in
  let covered tup =
    let find b lst =
      List.find_map
        (fun (b', rel) -> if Varset.equal b b' then Some rel else None)
        lst
    in
    let s13 = Varset.of_list [ 0; 2 ] and t123 = Varset.of_list [ 0; 1; 2 ] in
    (match find s13 stored with
    | Some rel -> Relation.mem rel tup
    | None -> false)
    || (match find s13 online with
       | Some rel -> Relation.mem rel tup
       | None -> false)
    ||
    match find t123 online with
    | Some rel ->
        Relation.fold
          (fun t acc -> acc || (t.(0) = tup.(0) && t.(2) = tup.(1)))
          rel false
    | None -> false
  in
  Relation.iter
    (fun tup ->
      Alcotest.check Alcotest.bool "answer covered" true (covered tup))
    truth

let test_online_soundness () =
  (* T-targets may over-approximate (local exactness) but must never
     contain a tuple violating the atoms inside the target bag *)
  let db = db_of skewed in
  let s = Twopp.build rule2 ~db ~budget:200 in
  let q_a = Relation.of_list (Schema.of_list [ 0; 2 ]) [ [| 0; 1 |]; [| 5; 9 |] ] in
  let edges = Tuple.Tbl.create 64 in
  List.iter (fun (a, b) -> Tuple.Tbl.replace edges [| a; b |] ()) skewed;
  List.iter
    (fun (b, rel) ->
      if Varset.equal b (Varset.of_list [ 0; 1; 2 ]) then
        Relation.iter
          (fun t ->
            Alcotest.check Alcotest.bool "edge x1->x2 present" true
              (Tuple.Tbl.mem edges [| t.(0); t.(1) |]);
            Alcotest.check Alcotest.bool "edge x2->x3 present" true
              (Tuple.Tbl.mem edges [| t.(1); t.(2) |]))
          rel)
    (Twopp.online s ~q_a)

let test_impossible_rule () =
  (* a rule with only S-targets at a hopeless budget must fail *)
  let r = Rule.make path2 ~s_targets:[ Varset.of_list [ 0; 2 ] ] ~t_targets:[] in
  (* dense bipartite-ish graph: S13 is large *)
  let edges =
    List.concat_map (fun i -> List.map (fun j -> (i, 100 + j)) (List.init 40 Fun.id))
      (List.init 40 Fun.id)
    @ List.concat_map
        (fun i -> List.map (fun j -> (100 + i, 200 + j)) (List.init 40 Fun.id))
        (List.init 40 Fun.id)
  in
  (try
     ignore (Twopp.build r ~db:(db_of edges) ~budget:5);
     Alcotest.fail "expected failure"
   with Failure _ -> ());
  (* but with a huge budget it stores fine *)
  let s = Twopp.build r ~db:(db_of edges) ~budget:10_000_000 in
  Alcotest.check Alcotest.bool "stored" true (Twopp.space s > 0)

let () =
  Alcotest.run "twopp"
    [
      ( "twopp",
        [
          Alcotest.test_case "budget respected" `Quick
            test_budget_respected_per_target;
          Alcotest.test_case "delegations shrink with budget" `Quick
            test_more_budget_fewer_delegations;
          Alcotest.test_case "model coverage" `Quick test_model_coverage;
          Alcotest.test_case "online local soundness" `Quick
            test_online_soundness;
          Alcotest.test_case "impossible rule" `Quick test_impossible_rule;
        ] );
    ]
