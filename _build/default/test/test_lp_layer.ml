(* The LP modelling layer's newer features: row enabling/disabling and
   the floating-point presolver, cross-checked against the exact
   solver. *)

open Stt_lp

let rat = Alcotest.testable Rat.pp Rat.equal
let r = Rat.of_int

let test_disable_row () =
  let m = Lp.create () in
  let x = Lp.var m "x" in
  let tight = Lp.add_le m [ (r 1, x) ] (r 2) in
  let loose = Lp.add_le m [ (r 1, x) ] (r 5) in
  (match Lp.maximize m [ (r 1, x) ] with
  | Lp.Solution s -> Alcotest.check rat "both enabled" (r 2) s.Lp.value
  | _ -> Alcotest.fail "solution expected");
  Lp.set_enabled m tight false;
  Alcotest.check Alcotest.bool "disabled" false (Lp.is_enabled m tight);
  (match Lp.maximize m [ (r 1, x) ] with
  | Lp.Solution s ->
      Alcotest.check rat "tight row ignored" (r 5) s.Lp.value;
      Alcotest.check rat "disabled row dual is 0" Rat.zero (s.Lp.dual tight);
      Alcotest.check rat "loose row dual" Rat.one (s.Lp.dual loose)
  | _ -> Alcotest.fail "solution expected");
  Lp.set_enabled m tight true;
  match Lp.maximize m [ (r 1, x) ] with
  | Lp.Solution s -> Alcotest.check rat "re-enabled" (r 2) s.Lp.value
  | _ -> Alcotest.fail "solution expected"

let test_disable_eq () =
  let m = Lp.create () in
  let x = Lp.var m "x" in
  let eq = Lp.add_eq m [ (r 1, x) ] (r 3) in
  ignore (Lp.add_le m [ (r 1, x) ] (r 7));
  (match Lp.maximize m [ (r 1, x) ] with
  | Lp.Solution s -> Alcotest.check rat "pinned" (r 3) s.Lp.value
  | _ -> Alcotest.fail "solution expected");
  Lp.set_enabled m eq false;
  match Lp.maximize m [ (r 1, x) ] with
  | Lp.Solution s -> Alcotest.check rat "freed" (r 7) s.Lp.value
  | _ -> Alcotest.fail "solution expected"

let test_float_matches_exact () =
  let m = Lp.create () in
  let x = Lp.var m "x" and y = Lp.var m "y" in
  ignore (Lp.add_le m [ (r 2, x); (r 1, y) ] (r 3));
  ignore (Lp.add_le m [ (r 1, x); (r 2, y) ] (r 3));
  let obj = [ (r 1, x); (r 1, y) ] in
  match (Lp.maximize m obj, Lp.maximize_float m obj) with
  | Lp.Solution s, Some f ->
      Alcotest.check Alcotest.bool "values agree (to perturbation)" true
        (Float.abs (Rat.to_float s.Lp.value -. f.Lp.fvalue) < 1e-3)
  | _ -> Alcotest.fail "both should solve"

let test_float_infeasible () =
  let m = Lp.create () in
  let x = Lp.var m "x" in
  ignore (Lp.add_le m [ (r 1, x) ] (r (-1)));
  Alcotest.check Alcotest.bool "float sees infeasible" true
    (Lp.maximize_float m [ (r 1, x) ] = None)

(* random boxed LPs: float presolver value tracks the exact value *)
let lp_gen =
  QCheck2.Gen.(
    let coef = map Rat.of_int (int_range (-3) 3) in
    let* n = int_range 2 4 in
    let* c = list_size (pure n) coef in
    let* rows =
      list_size (int_range 1 4)
        (pair (list_size (pure n) coef) (map Rat.of_int (int_range 0 6)))
    in
    pure (n, c, rows))

let qcheck_cases =
  [
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~name:"float value ≈ exact value" ~count:200 lp_gen
         (fun (n, c, rows) ->
           let m = Lp.create () in
           let vars = List.init n (fun i -> Lp.var m (string_of_int i)) in
           List.iter
             (fun (coeffs, rhs) ->
               ignore (Lp.add_le m (List.combine coeffs vars) rhs))
             rows;
           List.iter
             (fun v -> ignore (Lp.add_le m [ (Rat.one, v) ] (r 10)))
             vars;
           let obj = List.combine c vars in
           match (Lp.maximize m obj, Lp.maximize_float m obj) with
           | Lp.Solution s, Some f ->
               Float.abs (Rat.to_float s.Lp.value -. f.Lp.fvalue) < 1e-2
           | Lp.Infeasible, None -> true
           | _ -> false));
  ]

let () =
  Alcotest.run "lp_layer"
    [
      ( "enable/disable",
        [
          Alcotest.test_case "le rows" `Quick test_disable_row;
          Alcotest.test_case "eq rows" `Quick test_disable_eq;
        ] );
      ( "float presolver",
        [
          Alcotest.test_case "matches exact" `Quick test_float_matches_exact;
          Alcotest.test_case "infeasible" `Quick test_float_infeasible;
        ] );
      ("properties", qcheck_cases);
    ]
