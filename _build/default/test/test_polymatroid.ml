(* Set functions, polymatroid axioms and the LogSizeBound LP (whose
   optimal values on classic queries are the AGM bounds). *)

open Stt_hypergraph
open Stt_polymatroid
open Stt_lp

let rat = Alcotest.testable Rat.pp Rat.equal
let of_l = Varset.of_list

let cardinality_fn n =
  (* h(S) = |S| : the free matroid rank, a polymatroid *)
  Setfun.create n (fun s -> Rat.of_int (Varset.cardinal s))

let test_polymatroid_checks () =
  Alcotest.check Alcotest.bool "cardinality is polymatroid" true
    (Setfun.is_polymatroid (cardinality_fn 4));
  (* a coverage function: h(S) = |union of blocks indexed by S| *)
  let blocks = [| of_l [ 0; 1 ]; of_l [ 1; 2 ]; of_l [ 3 ] |] in
  let coverage =
    Setfun.create 3 (fun s ->
        let u =
          Varset.fold (fun i acc -> Varset.union acc blocks.(i)) s Varset.empty
        in
        Rat.of_int (Varset.cardinal u))
  in
  Alcotest.check Alcotest.bool "coverage is polymatroid" true
    (Setfun.is_polymatroid coverage);
  (* a non-submodular function: h(S) = |S|^2 *)
  let square =
    Setfun.create 3 (fun s ->
        Rat.of_int (Varset.cardinal s * Varset.cardinal s))
  in
  Alcotest.check Alcotest.bool "square not submodular" false
    (Setfun.is_submodular square);
  (* non-monotone *)
  let dip =
    Setfun.create 2 (fun s -> if Varset.cardinal s = 1 then Rat.of_int 2 else Rat.one)
  in
  Alcotest.check Alcotest.bool "dip not monotone" false (Setfun.is_monotone dip)

let test_conditional () =
  let h = cardinality_fn 3 in
  Alcotest.check rat "h(012|0) = 2" (Rat.of_int 2)
    (Setfun.conditional h (of_l [ 0 ]) (of_l [ 0; 1; 2 ]))

let triangle_dc =
  Degree.default_dc Cq.Library.triangle_detect.Cq.cq

let test_agm_triangle () =
  (* LogSizeBound of the full triangle join = AGM bound = 3/2 · log D *)
  match
    Polymatroid.log_size_bound ~n:3 ~dc:triangle_dc
      ~targets:[ Varset.full 3 ] ~logd:Rat.one ~logq:Rat.zero
  with
  | Some v -> Alcotest.check rat "3/2" (Rat.make 3 2) v
  | None -> Alcotest.fail "bounded expected"

let test_agm_path () =
  (* 2-path full join: |R|^2 / ... AGM = 2 (join of two relations sharing
     a variable has bound D^2... actually D^2 via both covers) *)
  let q = Cq.Library.k_path 2 in
  match
    Polymatroid.log_size_bound ~n:3
      ~dc:(Degree.default_dc q.Cq.cq)
      ~targets:[ Varset.full 3 ] ~logd:Rat.one ~logq:Rat.zero
  with
  | Some v -> Alcotest.check rat "2" (Rat.of_int 2) v
  | None -> Alcotest.fail "bounded expected"

let test_disjunctive_bound_smaller () =
  (* disjunctive rule with two targets can be smaller than either single
     target: max min over {0,1} and {1,2} for the 2-path *)
  let q = Cq.Library.k_path 2 in
  let dc = Degree.default_dc q.Cq.cq in
  let single =
    Option.get
      (Polymatroid.log_size_bound ~n:3 ~dc ~targets:[ Varset.full 3 ]
         ~logd:Rat.one ~logq:Rat.zero)
  in
  let disjunctive =
    Option.get
      (Polymatroid.log_size_bound ~n:3 ~dc
         ~targets:[ Varset.full 3; of_l [ 0; 2 ] ]
         ~logd:Rat.one ~logq:Rat.zero)
  in
  Alcotest.check Alcotest.bool "disjunctive <= single" true
    (Rat.compare disjunctive single <= 0)

let test_degree_constraint_tightens () =
  (* a degree bound deg(x3|x2) <= D^(1/2) caps the 2-path join at
     |R12| · D^(1/2) = D^(3/2); bounding the *other* direction
     deg(x2|x1) does not help (the witness h(0)=1, h(1)=0, h(012)=2 is a
     polymatroid), so the bound stays 2 *)
  let q = Cq.Library.k_path 2 in
  let dc = Degree.default_dc q.Cq.cq in
  let fwd =
    Degree.make ~x:(of_l [ 1 ]) ~y:(of_l [ 1; 2 ])
      (Degree.logsize_scale (Rat.make 1 2) Degree.logsize_d)
  in
  (match
     Polymatroid.log_size_bound ~n:3 ~dc:(fwd :: dc)
       ~targets:[ Varset.full 3 ] ~logd:Rat.one ~logq:Rat.zero
   with
  | Some v -> Alcotest.check rat "3/2 with deg(x3|x2)" (Rat.make 3 2) v
  | None -> Alcotest.fail "bounded expected");
  let back =
    Degree.make ~x:(of_l [ 0 ]) ~y:(of_l [ 0; 1 ])
      (Degree.logsize_scale (Rat.make 1 2) Degree.logsize_d)
  in
  match
    Polymatroid.log_size_bound ~n:3 ~dc:(back :: dc)
      ~targets:[ Varset.full 3 ] ~logd:Rat.one ~logq:Rat.zero
  with
  | Some v -> Alcotest.check rat "still 2 with deg(x2|x1)" (Rat.of_int 2) v
  | None -> Alcotest.fail "bounded expected"

let test_unbounded_without_constraints () =
  match
    Polymatroid.log_size_bound ~n:2 ~dc:[] ~targets:[ of_l [ 0; 1 ] ]
      ~logd:Rat.one ~logq:Rat.zero
  with
  | None -> ()
  | Some _ -> Alcotest.fail "expected unbounded"

(* random coverage functions are polymatroids *)
let coverage_gen =
  QCheck2.Gen.(
    list_size (pure 3)
      (map Varset.of_list (list_size (int_range 0 4) (int_range 0 5))))

let qcheck_cases =
  [
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~name:"coverage functions are polymatroids"
         ~count:200 coverage_gen (fun blocks_l ->
           let blocks = Array.of_list blocks_l in
           let h =
             Setfun.create 3 (fun s ->
                 let u =
                   Varset.fold
                     (fun i acc -> Varset.union acc blocks.(i))
                     s Varset.empty
                 in
                 Rat.of_int (Varset.cardinal u))
           in
           Setfun.is_polymatroid h));
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~name:"min of matroid rank and constant is polymatroid"
         ~count:200
         QCheck2.Gen.(int_range 0 4)
         (fun cap ->
           let h =
             Setfun.create 4 (fun s ->
                 Rat.of_int (min cap (Varset.cardinal s)))
           in
           Setfun.is_polymatroid h));
  ]

let () =
  Alcotest.run "polymatroid"
    [
      ( "setfun",
        [
          Alcotest.test_case "axioms" `Quick test_polymatroid_checks;
          Alcotest.test_case "conditional" `Quick test_conditional;
        ] );
      ( "log_size_bound",
        [
          Alcotest.test_case "AGM triangle 3/2" `Quick test_agm_triangle;
          Alcotest.test_case "AGM 2-path 2" `Quick test_agm_path;
          Alcotest.test_case "disjunctive smaller" `Quick
            test_disjunctive_bound_smaller;
          Alcotest.test_case "degree constraint tightens" `Quick
            test_degree_constraint_tightens;
          Alcotest.test_case "unbounded without constraints" `Quick
            test_unbounded_without_constraints;
        ] );
      ("properties", qcheck_cases);
    ]
