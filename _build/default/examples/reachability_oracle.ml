(* A k-reachability oracle (Section 6.4): "is there a path of length k
   from u to v?" answered from a space-budgeted index.

   Three implementations are compared on the same graph:
   - BFS from scratch (no index),
   - the Goldstein et al. baseline (conjectured-optimal tradeoff
     S·T^{2/(k-1)} ≅ |E|², which the paper refutes for k ≥ 3),
   - the paper's framework (PMTDs + 2-phase disjunctive rules + LP). *)

open Stt_apps
open Stt_relation
open Stt_workload

let k = 3
let vertices = 600
let edges_n = 6_000

let () =
  Printf.printf "== %d-reachability oracle ==\n" k;
  let edges = Graphs.zipf_both ~seed:9 ~vertices ~edges:edges_n ~s:1.1 in
  Printf.printf "graph: %d vertices, %d edges\n\n" vertices (List.length edges);

  let rng = Rng.create 3 in
  let queries =
    List.init 300 (fun _ -> (Rng.int rng vertices, Rng.int rng vertices))
  in
  let measure name space query =
    let total = ref 0 and worst = ref 0 and yes = ref 0 in
    List.iter
      (fun (u, v) ->
        let hit, snap = Cost.measure (fun () -> query u v) in
        if hit then incr yes;
        total := !total + Cost.total snap;
        worst := max !worst (Cost.total snap))
      queries;
    Printf.printf "%-28s space=%7d  avg=%6d ops  worst=%7d ops  (%d reachable)\n"
      name space
      (!total / List.length queries)
      !worst !yes
  in

  let bfs = Reach.Bfs.build edges in
  measure "BFS (S = 0)" 0 (fun u v -> Reach.Bfs.query bfs ~k u v);

  List.iter
    (fun budget ->
      let b = Reach.Baseline.build ~k edges ~budget in
      measure
        (Printf.sprintf "baseline (budget %d)" budget)
        (Reach.Baseline.space b)
        (fun u v -> Reach.Baseline.query b u v))
    [ 1_000; 100_000 ];

  List.iter
    (fun budget ->
      let f = Reach.Framework.build ~k edges ~budget in
      measure
        (Printf.sprintf "framework (budget %d)" budget)
        (Reach.Framework.space f)
        (fun u v -> Reach.Framework.query f u v))
    [ 1_000; 100_000 ];

  print_endline "\n(the framework index dominates the baseline at equal space;";
  print_endline " see bench/main.exe fig3a for the full analytic curves)"
