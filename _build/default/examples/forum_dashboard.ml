(* The hierarchical CQAP of Appendix F on a synthetic forum: four fact
   tables R, S, T, U over (thread, group, attribute) and Boolean access
   requests over the four attributes.

   Two indexes answer the same workload: the baseline adapted from
   Kara et al. (Theorem F.4, S·T³ ≅ N⁴) and the paper's framework
   (improved to S·T⁴ ≅ N⁴·|Q|⁴). *)

open Stt_apps
open Stt_relation
open Stt_workload

let () =
  print_endline "== forum dashboard: hierarchical CQAP ==";
  let inst = Hierarchical.generate ~seed:23 ~posts:400 ~size:6_000 in
  Printf.printf "facts: R=%d S=%d T=%d U=%d\n\n"
    (List.length inst.Hierarchical.r)
    (List.length inst.Hierarchical.s)
    (List.length inst.Hierarchical.t)
    (List.length inst.Hierarchical.u);
  let rng = Rng.create 29 in
  let zdom = 100 in
  let queries =
    List.init 200 (fun _ -> Array.init 4 (fun _ -> Rng.int rng zdom))
  in
  let run name space query =
    let total = ref 0 and hits = ref 0 in
    List.iter
      (fun q ->
        let hit, snap = Cost.measure (fun () -> query q) in
        if hit then incr hits;
        total := !total + Cost.total snap)
      queries;
    Printf.printf "%-32s space=%7d  avg=%5d ops  (%d hits)\n" name space
      (!total / List.length queries)
      !hits
  in
  List.iter
    (fun epsilon ->
      let t = Hierarchical.Adapted.build inst ~epsilon in
      run
        (Printf.sprintf "adapted Kara et al. (ε=%.2f)" epsilon)
        (Hierarchical.Adapted.space t)
        (Hierarchical.Adapted.query t))
    [ 0.0; 0.4; 0.8 ];
  List.iter
    (fun budget ->
      let t = Hierarchical.Framework.build inst ~budget in
      run
        (Printf.sprintf "framework (budget %d)" budget)
        (Hierarchical.Framework.space t)
        (Hierarchical.Framework.query t))
    [ 1_000; 100_000 ]
