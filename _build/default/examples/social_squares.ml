(* The square query of Example E.5 on a "social network": given two
   users, do they sit on opposite corners of a 4-cycle (a pair of
   mutual friends-of-friends chains)?  Tradeoff S·T² ≅ |E|²·|Q|². *)

open Stt_apps
open Stt_relation
open Stt_workload

let () =
  print_endline "== social squares: opposite corners of a 4-cycle ==";
  let vertices = 300 in
  let edges = Graphs.cycle_rich ~seed:17 ~vertices ~edges:3_000 in
  Printf.printf "graph: %d vertices, %d edges\n\n" vertices (List.length edges);
  let rng = Rng.create 5 in
  let queries =
    List.init 200 (fun _ -> (Rng.int rng vertices, Rng.int rng vertices))
  in
  List.iter
    (fun budget ->
      let index = Patterns.Square.build edges ~budget in
      let total = ref 0 and hits = ref 0 and worst = ref 0 in
      List.iter
        (fun (u, w) ->
          let hit, snap =
            Cost.measure (fun () -> Patterns.Square.query index u w)
          in
          if hit then incr hits;
          total := !total + Cost.total snap;
          worst := max !worst (Cost.total snap))
        queries;
      Printf.printf
        "budget %7d: space=%7d  avg=%5d ops  worst=%6d ops  (%d squares)\n"
        budget
        (Patterns.Square.space index)
        (!total / List.length queries)
        !worst !hits)
    [ 10; 3_000; 300_000 ];

  (* the triangle variant: empty access pattern, one request returns all
     corner pairs *)
  print_endline "\n== triangle corner pairs (Example E.4, A = ∅) ==";
  let tri = Patterns.Triangle.build edges ~budget:1_000_000 in
  let pairs = Patterns.Triangle.corner_pairs tri in
  Printf.printf "space=%d, %d (x1,x3) pairs participate in triangles\n"
    (Patterns.Triangle.space tri)
    (List.length pairs)
