(* Watching PANDA work: interpret the paper's 2-reachability proof
   sequence step by step over a real graph.

   Each Shannon-flow proof step is a relational operation
   (Appendix D.3): composition joins, decomposition/monotonicity
   project, submodularity re-keys a dictionary into candidates.  The
   final candidates over-approximate the target and are filtered exact
   by semijoins with the guard relations. *)

open Stt_relation
open Stt_hypergraph
open Stt_polymatroid
open Stt_core
open Stt_lp
open Stt_workload

let of_l = Varset.of_list

let () =
  print_endline "== PANDA proof steps over a real graph ==";
  let edges = Graphs.zipf_both ~seed:5 ~vertices:200 ~edges:2_000 ~s:1.1 in
  let rel schema =
    Relation.of_list
      (Schema.of_list schema)
      (List.map (fun (a, b) -> [| a; b |]) edges)
  in
  let r1 = rel [ 0; 1 ] and r2 = rel [ 1; 2 ] in
  let q13 =
    Relation.of_list (Schema.of_list [ 0; 2 ]) [ [| 7; 12 |]; [| 3; 3 |] ]
  in
  let entry = Paper_proofs.find "E.6 (2-reachability)" in
  Format.printf "inequality to execute (T-side of %s):@.  %a  ≥  %a@."
    entry.Paper_proofs.name
    (Cvec.pp entry.Paper_proofs.var_names)
    entry.Paper_proofs.delta_t
    (Cvec.pp entry.Paper_proofs.var_names)
    entry.Paper_proofs.lambda_t;

  let state =
    Interp.init
      [
        ((of_l [ 0 ], of_l [ 0; 1 ]), Rat.one, r1);
        ((of_l [ 2 ], of_l [ 1; 2 ]), Rat.one, r2);
        ((Varset.empty, of_l [ 0; 2 ]), Rat.of_int 2, q13);
      ]
  in
  print_endline "\nexecuting the proof sequence:";
  let final =
    List.fold_left
      (fun st step ->
        match st with
        | Error e -> Error e
        | Ok st ->
            Format.printf "  step %a@."
              (Proof.pp_step entry.Paper_proofs.var_names)
              step.Proof.step;
            Interp.apply st step)
      (Ok state) entry.Paper_proofs.seq_t
  in
  match final with
  | Error e -> Printf.printf "failed: %s\n" e
  | Ok final -> (
      match Interp.extract final (of_l [ 0; 1; 2 ]) with
      | None -> print_endline "no target produced"
      | Some candidates ->
          let exact =
            Interp.filter_exact candidates ~guards:[ r1; r2; q13 ]
          in
          Printf.printf
            "\ncandidates for T123: %d tuples; exact after guard filtering: %d\n"
            (Relation.cardinal candidates)
            (Relation.cardinal exact);
          let truth =
            Relation.project
              (Relation.natural_join (Relation.natural_join q13 r1) r2)
              [ 0; 1; 2 ]
          in
          Printf.printf "ground truth (full join): %d — equal: %b\n"
            (Relation.cardinal truth)
            (Relation.equal exact truth))
