(* Symbolic use of the framework: compute the space-time tradeoff of a
   CQAP without touching any data.  This is the "what do I get for S
   space?" question a system designer would ask the library. *)

open Stt_hypergraph
open Stt_decomp
open Stt_core
open Stt_lp

let explore name q =
  Format.printf "@.== %s ==@." name;
  Format.printf "query: %a@." Cq.pp_cqap q;
  let pmtds = Enum.pmtds ~max_pmtds:128 q in
  Format.printf "non-redundant, non-dominant PMTDs: %d@." (List.length pmtds);
  let rules = Rule.generate q pmtds in
  Format.printf "subset-minimal 2-phase disjunctive rules: %d@."
    (List.length rules);
  let dc = Degree.default_dc q.Cq.cq and ac = Degree.default_ac q in
  List.iter
    (fun r ->
      Format.printf "  %a@." Rule.pp r;
      let tradeoffs =
        Jointflow.rule_tradeoffs r ~dc ~ac ~logq:(Rat.make 1 32)
          ~logs_grid:(Tradeoff.grid ~lo:Rat.zero ~hi:(Rat.of_int 2) ~steps:8)
      in
      List.iter (fun t -> Format.printf "      %a@." Tradeoff.pp t) tradeoffs)
    rules;
  (* the combined curve: for each budget, the best time over strategies,
     taking the max over rules (all rules must run) *)
  Format.printf "combined curve (|Q|=1):@.";
  List.iter
    (fun logs ->
      let worst =
        List.fold_left
          (fun acc r ->
            match Jointflow.logt r ~dc ~ac ~logq:Rat.zero ~logs with
            | Some t -> Rat.max acc t
            | None -> acc)
          Rat.zero rules
      in
      Format.printf "  log_D S = %-4s →  log_D T = %s@." (Rat.to_string logs)
        (Rat.to_string worst))
    (Tradeoff.grid ~lo:Rat.zero ~hi:(Rat.of_int 2) ~steps:4)

let () =
  explore "2-Set Disjointness" (Cq.Library.k_set_disjointness 2);
  explore "3-reachability" (Cq.Library.k_path 3);
  explore "square query" Cq.Library.square
