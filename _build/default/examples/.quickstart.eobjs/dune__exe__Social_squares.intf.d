examples/social_squares.mli:
