examples/batch_requests.mli:
