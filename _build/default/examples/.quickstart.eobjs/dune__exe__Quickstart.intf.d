examples/quickstart.mli:
