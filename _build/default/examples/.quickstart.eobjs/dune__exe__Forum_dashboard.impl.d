examples/forum_dashboard.ml: Array Cost Hierarchical List Printf Rng Stt_apps Stt_relation Stt_workload
