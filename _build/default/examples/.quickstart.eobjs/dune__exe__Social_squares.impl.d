examples/social_squares.ml: Cost Graphs List Patterns Printf Rng Stt_apps Stt_relation Stt_workload
