examples/reachability_oracle.ml: Cost Graphs List Printf Reach Rng Stt_apps Stt_relation Stt_workload
