examples/tradeoff_explorer.ml: Cq Degree Enum Format Jointflow List Rat Rule Stt_core Stt_decomp Stt_hypergraph Stt_lp Tradeoff
