examples/quickstart.ml: Cost List Printf Rng Setdisj Sets Stt_apps Stt_relation Stt_workload
