examples/batch_requests.ml: Cost Cq Db Engine Graphs List Printf Relation Rng Stt_core Stt_hypergraph Stt_relation Stt_workload
