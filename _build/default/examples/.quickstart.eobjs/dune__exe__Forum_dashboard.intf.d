examples/forum_dashboard.mli:
