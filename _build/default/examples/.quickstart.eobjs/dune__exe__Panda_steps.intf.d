examples/panda_steps.mli:
