examples/reachability_oracle.mli:
