(* Quickstart: 2-Set Disjointness — the paper's introductory example.

   We build a space-budgeted index over a family of sets and answer
   "do sets A and B intersect?" requests.  With budget S the index
   answers in Õ(N/√S) probes (tradeoff S·T² ≅ N², Section 5). *)

open Stt_apps
open Stt_relation
open Stt_workload

let () =
  print_endline "== quickstart: 2-Set Disjointness index ==";
  (* a family of 300 sets over a universe of 2000 elements, with
     Zipf-distributed set sizes (a few huge sets, many small ones) *)
  let memberships =
    Sets.zipf_sizes ~seed:1 ~universe:2000 ~sets:300 ~memberships:20_000 ~s:1.2
  in
  let n = List.length memberships in
  Printf.printf "input: %d membership pairs, %d sets\n" n 300;

  (* build indexes at three space budgets *)
  List.iter
    (fun budget ->
      let index = Setdisj.build ~k:2 ~memberships ~budget in
      Printf.printf
        "\nbudget %7d: stored %6d entries, %d heavy sets (threshold %d)\n"
        budget (Setdisj.space index)
        (Setdisj.heavy_sets index)
        (Setdisj.threshold index);
      (* answer a few requests, counting data-structure operations *)
      let rng = Rng.create 7 in
      let total = ref 0 and worst = ref 0 and yes = ref 0 in
      let queries = 500 in
      for _ = 1 to queries do
        let q = [| Rng.int rng 300; Rng.int rng 300 |] in
        let disjoint, snap = Cost.measure (fun () -> Setdisj.disjoint index q) in
        if not disjoint then incr yes;
        let c = Cost.total snap in
        total := !total + c;
        worst := max !worst c
      done;
      Printf.printf
        "%d queries: %d intersecting; avg %d ops, worst %d ops\n" queries !yes
        (!total / queries) !worst)
    [ 0; 2_000; 200_000 ];
  print_endline "\n(higher budget → fewer online operations: S·T² ≅ N²)"
