(* stt — space-time tradeoffs for CQAPs, from the command line.

   stt queries                         list built-in queries
   stt pmtds  --query 3reach           enumerate PMTDs
   stt rules  --query 3reach           generate 2-phase disjunctive rules
   stt tradeoff --query 3reach [--logs 1.25] [--logq 0]
                                       per-rule tradeoffs / OBJ(S)
   stt curve  --query 4reach --steps 8 combined curve over log_D S ∈ [0,2]
   stt demo   --query 2reach --budget 1000 --edges 4000
                                       build an index on a synthetic graph
                                       and report measured space/time
   stt snapshot --query 2reach -o q.snap
                                       build once, save a binary snapshot
   stt serve  --from-snapshot q.snap   serve without rebuilding
   stt serve-net --from-snapshot q.snap --port 7421
                                       serve over TCP (worker domains,
                                       bounded queue, deadlines; SIGTERM
                                       drains and flushes an artifact)
   stt bench-net --port 7421 --connections 8 --requests 10000
                                       closed-loop Zipf load generator:
                                       answers/sec + p50/p95/p99 *)

open Cmdliner
open Stt_hypergraph
open Stt_decomp
open Stt_core
open Stt_lp
open Stt_obs

let builtin_queries =
  [
    ("2reach", lazy (Cq.Library.k_path 2));
    ("3reach", lazy (Cq.Library.k_path 3));
    ("4reach", lazy (Cq.Library.k_path 4));
    ("setdisj2", lazy (Cq.Library.k_set_disjointness 2));
    ("setdisj3", lazy (Cq.Library.k_set_disjointness 3));
    ("setint2", lazy (Cq.Library.k_set_intersection 2));
    ("square", lazy Cq.Library.square);
    ("triangle", lazy Cq.Library.triangle_detect);
    ("edge-triangle", lazy Cq.Library.edge_triangle);
    ("hierarchical", lazy Cq.Library.hierarchical_binary);
  ]

let query_conv =
  let parse s =
    match List.assoc_opt s builtin_queries with
    | Some q -> Ok (Lazy.force q)
    | None ->
        Error (`Msg (Printf.sprintf "unknown query %s (try `stt queries')" s))
  in
  Arg.conv (parse, fun ppf q -> Cq.pp_cqap ppf q)

let query_arg =
  Arg.(
    required
    & opt (some query_conv) None
    & info [ "q"; "query" ] ~docv:"QUERY" ~doc:"Built-in query name.")

let rat_of_float f = Rat.of_float_approx ~max_den:64 f

(* counts that must be >= 1 (--jobs, --batch, ...): reject 0 and
   negatives at parse time with cmdliner's one-line error (exit 124)
   instead of surfacing an Invalid_argument backtrace later *)
let pos_int =
  let parse s =
    match int_of_string_opt s with
    | Some n when n > 0 -> Ok n
    | Some _ -> Error (`Msg (Printf.sprintf "%s is not a positive integer" s))
    | None -> Error (`Msg (Printf.sprintf "%S is not an integer" s))
  in
  Arg.conv (parse, Format.pp_print_int)

let nonneg_int =
  let parse s =
    match int_of_string_opt s with
    | Some n when n >= 0 -> Ok n
    | Some _ -> Error (`Msg (Printf.sprintf "%s is negative" s))
    | None -> Error (`Msg (Printf.sprintf "%S is not an integer" s))
  in
  Arg.conv (parse, Format.pp_print_int)

(* --json DIR: write a machine-readable artifact next to the printed
   output — the command's results plus the observability trace of the
   run (schema "stt-cli/1", see DESIGN.md). *)
let json_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "json" ] ~docv:"DIR"
        ~doc:
          "Write a machine-readable artifact STT_<command>.json (results \
           plus observability trace) into $(docv).")

let json_rat r = Json.String (Rat.to_string r)

let json_tradeoff (t : Tradeoff.t) =
  Json.Obj
    [
      ("s_exp", json_rat t.Tradeoff.s_exp);
      ("t_exp", json_rat t.Tradeoff.t_exp);
      ("d_exp", json_rat t.Tradeoff.d_exp);
      ("q_exp", json_rat t.Tradeoff.q_exp);
      ("pretty", Json.String (Format.asprintf "%a" Tradeoff.pp t));
    ]

(* [f] returns the command's data as JSON fields; without [--json] it
   runs with observability off and the data is discarded. *)
let with_artifact cmd json_dir f =
  match json_dir with
  | None -> ignore (f ())
  | Some dir ->
      if not (Sys.file_exists dir && Sys.is_directory dir) then (
        Format.eprintf "stt: --json %s: not a directory@." dir;
        exit 1);
      Obs.set_enabled true;
      Obs.reset ();
      let t0 = Unix.gettimeofday () in
      let data = Fun.protect ~finally:(fun () -> Obs.set_enabled false) f in
      let wall = Unix.gettimeofday () -. t0 in
      let doc =
        Json.Obj
          [
            ("schema", Json.String "stt-cli/1");
            ("command", Json.String cmd);
            ("wall_s", Json.Float wall);
            ("data", Json.Obj data);
            ("trace", Obs.trace ());
          ]
      in
      let path = Filename.concat dir ("STT_" ^ cmd ^ ".json") in
      Json.to_file path doc;
      Format.printf "artifact: %s@." path

let queries_cmd =
  let doc = "List built-in queries." in
  let run () =
    List.iter
      (fun (name, q) ->
        Format.printf "%-14s %a@." name Cq.pp_cqap (Lazy.force q))
      builtin_queries
  in
  Cmd.v (Cmd.info "queries" ~doc) Term.(const run $ const ())

let pmtds_cmd =
  let doc = "Enumerate the non-redundant, non-dominant PMTDs of a query." in
  let run q =
    let pmtds = Enum.pmtds ~max_pmtds:128 q in
    Format.printf "%d PMTDs:@." (List.length pmtds);
    List.iter (fun p -> Format.printf "  %a@." Pmtd.pp p) pmtds
  in
  Cmd.v (Cmd.info "pmtds" ~doc) Term.(const run $ query_arg)

let rules_cmd =
  let doc = "Generate the subset-minimal 2-phase disjunctive rules." in
  let run q =
    let rules = Rule.generate q (Enum.pmtds ~max_pmtds:128 q) in
    Format.printf "%d rules:@." (List.length rules);
    List.iteri (fun i r -> Format.printf "ρ%d: %a@." (i + 1) Rule.pp r) rules
  in
  Cmd.v (Cmd.info "rules" ~doc) Term.(const run $ query_arg)

let logs_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "logs" ] ~docv:"X"
        ~doc:"Space budget as log_D S; omitted = sweep a small grid.")

let logq_arg =
  Arg.(
    value
    & opt float 0.0
    & info [ "logq" ] ~docv:"X" ~doc:"Access-request size as log_D |Q_A|.")

let tradeoff_cmd =
  let doc = "Compute per-rule space-time tradeoffs (LP over joint flows)." in
  let run q logs logq json_dir =
    with_artifact "tradeoff" json_dir @@ fun () ->
    let rules = Rule.generate q (Enum.pmtds ~max_pmtds:128 q) in
    let dc = Degree.default_dc q.Cq.cq and ac = Degree.default_ac q in
    let logq = rat_of_float logq in
    let rows =
      match logs with
      | Some logs ->
          let logs = rat_of_float logs in
          List.mapi
            (fun i r ->
              Format.printf "ρ%d: %a@." (i + 1) Rule.pp r;
              let obj =
                match Jointflow.obj r ~dc ~ac ~logd:Rat.one ~logq ~logs with
                | { Jointflow.value = Jointflow.Stored; _ } ->
                    Format.printf "    stored outright: T = Õ(1)@.";
                    Json.Obj [ ("kind", Json.String "stored") ]
                | { Jointflow.value = Jointflow.Impossible; _ } ->
                    Format.printf "    not computable within this budget@.";
                    Json.Obj [ ("kind", Json.String "impossible") ]
                | { Jointflow.value = Jointflow.Time t; tradeoff; _ } ->
                    Format.printf "    log_D T = %a" Rat.pp t;
                    (match tradeoff with
                    | Some tr ->
                        Format.printf "   [%a]" Tradeoff.pp (Tradeoff.scaled tr)
                    | None -> ());
                    Format.printf "@.";
                    Json.Obj
                      (("kind", Json.String "time")
                      :: ("logt", json_rat t)
                      ::
                      (match tradeoff with
                      | Some tr ->
                          [ ("tradeoff", json_tradeoff (Tradeoff.scaled tr)) ]
                      | None -> []))
              in
              Json.Obj
                [
                  ("rule", Json.String (Format.asprintf "%a" Rule.pp r));
                  ("obj", obj);
                ])
            rules
      | None ->
          let grid = Tradeoff.grid ~lo:Rat.zero ~hi:(Rat.of_int 2) ~steps:8 in
          List.mapi
            (fun i r ->
              Format.printf "ρ%d: %a@." (i + 1) Rule.pp r;
              let ts =
                Jointflow.rule_tradeoffs r ~dc ~ac ~logq ~logs_grid:grid
              in
              List.iter (fun t -> Format.printf "    %a@." Tradeoff.pp t) ts;
              Json.Obj
                [
                  ("rule", Json.String (Format.asprintf "%a" Rule.pp r));
                  ("tradeoffs", Json.List (List.map json_tradeoff ts));
                ])
            rules
    in
    [ ("rules", Json.List rows) ]
  in
  Cmd.v (Cmd.info "tradeoff" ~doc)
    Term.(const run $ query_arg $ logs_arg $ logq_arg $ json_arg)

let steps_arg =
  Arg.(value & opt int 8 & info [ "steps" ] ~docv:"N" ~doc:"Grid resolution.")

let exact_arg =
  Arg.(
    value & flag
    & info [ "exact" ]
        ~doc:"Compute exact piecewise-linear breakpoints instead of sampling.")

let curve_cmd =
  let doc = "Combined tradeoff curve: worst rule at each budget." in
  let run q steps exact json_dir =
    with_artifact "curve" json_dir @@ fun () ->
    let rules = Rule.generate q (Enum.pmtds ~max_pmtds:128 q) in
    let dc = Degree.default_dc q.Cq.cq and ac = Degree.default_ac q in
    if exact then begin
      let curve =
        Curve.combined rules ~dc ~ac ~logq:Rat.zero ~lo:Rat.zero
          ~hi:(Rat.of_int 2)
      in
      Format.printf "@[<v>%a@]@." Curve.pp curve;
      [
        ( "segments",
          Json.List
            (List.map
               (fun (s : Curve.segment) ->
                 Json.Obj
                   [
                     ("lo", json_rat s.Curve.lo);
                     ("hi", json_rat s.Curve.hi);
                     ("lo_t", json_rat s.Curve.lo_t);
                     ("hi_t", json_rat s.Curve.hi_t);
                   ])
               curve) );
      ]
    end
    else
      let points =
        List.map
          (fun logs ->
            let t =
              List.fold_left
                (fun acc r ->
                  match Jointflow.logt r ~dc ~ac ~logq:Rat.zero ~logs with
                  | Some t -> Rat.max acc (Rat.max Rat.zero t)
                  | None -> acc)
                Rat.zero rules
            in
            Format.printf "log_D S = %-6s  log_D T = %s@." (Rat.to_string logs)
              (Rat.to_string t);
            Json.Obj [ ("logs", json_rat logs); ("logt", json_rat t) ])
          (Tradeoff.grid ~lo:Rat.zero ~hi:(Rat.of_int 2) ~steps)
      in
      [ ("points", Json.List points) ]
  in
  Cmd.v (Cmd.info "curve" ~doc)
    Term.(const run $ query_arg $ steps_arg $ exact_arg $ json_arg)

let budget_arg =
  Arg.(value & opt int 1000 & info [ "budget" ] ~docv:"N" ~doc:"Space budget in tuples.")

let edges_arg =
  Arg.(value & opt int 4000 & info [ "edges" ] ~docv:"N" ~doc:"Synthetic edge count.")

let seed_arg = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"RNG seed.")

let jobs_arg =
  Arg.(
    value
    & opt (some pos_int) None
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Worker domains for the parallel build (default: $(b,STT_JOBS) or \
           the machine's recommended domain count).")

let set_jobs = Option.iter Stt_relation.Pool.set_jobs

let cache_budget_arg =
  Arg.(
    value & opt nonneg_int 0
    & info [ "cache-budget" ] ~docv:"N"
        ~doc:
          "Answer-cache budget in stored tuples, on top of the engine's \
           space budget ($(b,0) = no cache).  With $(b,--from-snapshot), \
           $(b,0) keeps any warm cache stored in the snapshot; a positive \
           value replaces it with a fresh cache of this budget.")

(* cache fields shared by the serve/serve-net artifacts: intrinsic space
   stays [space]; the cache reports its own occupancy and hit rate *)
let json_cache_stats idx =
  (* [total_space] = space + cache + aggregate tables, in every branch:
     the one number that tracks everything the engine holds *)
  let totals =
    [
      ("agg_space", Json.Int (Engine.agg_table_size idx));
      ("factorized_views", Json.Int (Engine.factorized_views idx));
      ("materialized_rows", Json.Int (Engine.materialized_rows idx));
      ("total_space", Json.Int (Engine.total_space idx));
    ]
  in
  match Engine.cache_stats idx with
  | None -> ("cache_budget", Json.Int 0) :: totals
  | Some (s : Stt_cache.Cache.stats) ->
      let lookups = s.hits + s.misses in
      [
        ("cache_budget", Json.Int s.budget);
        ("cache_space", Json.Int s.used);
        ("cache_entries", Json.Int s.entries);
        ("cache_hits", Json.Int s.hits);
        ("cache_misses", Json.Int s.misses);
        ("cache_evictions", Json.Int s.evictions);
        ("cache_factorized", Json.Int s.factorized);
        ( "cache_hit_rate",
          Json.Float
            (if lookups = 0 then 0.0
             else float_of_int s.hits /. float_of_int lookups) );
      ]
      @ totals

module Scenario = Stt_workload.Scenario

(* demo/serve/snapshot evaluate over the shared synthetic scenario
   ([Stt_workload.Scenario]): a Zipf graph bound to the single edge
   relation R.  Reject queries over anything else, naming the offender. *)
let require_single_edge_relation cmd q =
  match Scenario.single_edge_violation q with
  | None -> ()
  | Some rel ->
      Format.eprintf
        "stt %s: supports single-edge-relation queries only (atom over %S)@."
        cmd rel;
      exit 1

let demo_cmd =
  let doc =
    "Build an index over a synthetic Zipf graph and report measured \
     space and per-query cost."
  in
  let run q budget nedges seed jobs json_dir =
    with_artifact "demo" json_dir @@ fun () ->
    set_jobs jobs;
    let open Stt_relation in
    let vertices = Scenario.vertices_for_edges nedges in
    require_single_edge_relation "demo" q;
    let db = Scenario.synthetic_db ~seed ~vertices ~edges:nedges in
    Format.printf "building index (budget %d) over |E| = %d...@." budget
      (Db.size db);
    let idx = Engine.build_auto ~max_pmtds:128 q ~db ~budget in
    Format.printf "space: %d stored tuples@." (Engine.space idx);
    let rng = Stt_workload.Rng.create (seed + 1) in
    let arity = Varset.cardinal q.Cq.access in
    let total = ref 0 and worst = ref 0 and hits = ref 0 in
    let queries = 200 in
    for _ = 1 to queries do
      let tup = Array.init arity (fun _ -> Stt_workload.Rng.int rng vertices) in
      let hit, snap = Cost.measure (fun () -> Engine.answer_tuple idx tup) in
      if hit then incr hits;
      total := !total + Cost.total snap;
      worst := max !worst (Cost.total snap)
    done;
    Format.printf "%d queries: %d hits, avg %d ops, worst %d ops@." queries
      !hits (!total / queries) !worst;
    [
      ("budget", Json.Int budget);
      ("edges", Json.Int (Db.size db));
      ("space", Json.Int (Engine.space idx));
      ( "per_pmtd_space",
        Json.List
          (List.map
             (fun (p, s) ->
               Json.Obj
                 [
                   ("pmtd", Json.String (Format.asprintf "%a" Pmtd.pp p));
                   ("space", Json.Int s);
                 ])
             (Engine.per_pmtd_space idx)) );
      ("queries", Json.Int queries);
      ("hits", Json.Int !hits);
      ("avg_ops", Json.Int (!total / queries));
      ("worst_ops", Json.Int !worst);
    ]
  in
  Cmd.v (Cmd.info "demo" ~doc)
    Term.(
      const run $ query_arg $ budget_arg $ edges_arg $ seed_arg $ jobs_arg
      $ json_arg)

let requests_arg =
  Arg.(
    value & opt int 2000
    & info [ "requests" ] ~docv:"N" ~doc:"Access requests to serve.")

let batch_arg =
  Arg.(
    value & opt pos_int 64
    & info [ "batch" ] ~docv:"N"
        ~doc:"Requests per batch handed to $(b,answer_batch) (1 = unbatched).")

let skew_arg =
  Arg.(
    value & opt float 1.5
    & info [ "skew" ] ~docv:"S"
        ~doc:
          "Zipf exponent of the request stream (hot-key serving; the graph \
           itself stays at 1.1).")

let chunks k xs =
  let rec take n acc = function
    | x :: tl when n > 0 -> take (n - 1) (x :: acc) tl
    | rest -> (List.rev acc, rest)
  in
  let rec go = function
    | [] -> []
    | xs ->
        let b, rest = take k [] xs in
        b :: go rest
  in
  go xs

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else sorted.(min (n - 1) (int_of_float (ceil (p *. float_of_int n)) - 1))

let serve_query_arg =
  Arg.(
    value
    & opt (some query_conv) None
    & info [ "q"; "query" ] ~docv:"QUERY"
        ~doc:"Built-in query name (not needed with $(b,--from-snapshot)).")

let from_snapshot_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "from-snapshot" ] ~docv:"FILE"
        ~doc:
          "Serve from a saved snapshot instead of building: load $(docv) and \
           skip the query and the preprocessing entirely.  Pass the same \
           $(b,--edges) as at snapshot time so the request stream samples \
           the same vertex range.")

let serve_cmd =
  let doc =
    "Serve a Zipf stream of single-tuple access requests in batches and \
     report throughput (answers/sec) and latency percentiles."
  in
  let run q budget nedges seed requests batch skew cache_budget jobs snapshot
      json_dir =
    with_artifact "serve" json_dir @@ fun () ->
    set_jobs jobs;
    let open Stt_relation in
    let vertices = Scenario.vertices_for_edges nedges in
    let idx, build_wall, origin =
      match snapshot with
      | Some path -> (
          let t0 = Unix.gettimeofday () in
          match Engine.load path with
          | Ok idx ->
              let wall = Unix.gettimeofday () -. t0 in
              Format.printf
                "loaded snapshot %s: space %d stored tuples (in %.3fs)@." path
                (Engine.space idx) wall;
              (idx, wall, "snapshot")
          | Error e ->
              Format.eprintf "stt serve: %s: %s@." path
                (Stt_store.Store.error_to_string e);
              exit 1)
      | None ->
          let q =
            match q with
            | Some q -> q
            | None ->
                Format.eprintf
                  "stt serve: a query is required unless --from-snapshot is \
                   given@.";
                exit 1
          in
          require_single_edge_relation "serve" q;
          let db = Scenario.synthetic_db ~seed ~vertices ~edges:nedges in
          Format.printf "building index (budget %d, jobs %d) over |E| = %d...@."
            budget (Pool.jobs ()) (Db.size db);
          let tb0 = Unix.gettimeofday () in
          let idx = Engine.build_auto ~max_pmtds:128 q ~db ~budget in
          let wall = Unix.gettimeofday () -. tb0 in
          Format.printf "space: %d stored tuples (built in %.3fs)@."
            (Engine.space idx) wall;
          (idx, wall, "build")
    in
    if cache_budget > 0 then begin
      Engine.attach_cache idx ~budget:cache_budget;
      Format.printf "answer cache: %d stored tuples budget@." cache_budget
    end;
    (* Zipf-skewed request stream: hub vertices recur, so batches carry
       duplicates — exactly the sharing [answer_batch] exploits *)
    let acc_schema = Engine.access_schema idx in
    let arity = Schema.arity acc_schema in
    let reqs =
      List.map
        (Relation.singleton acc_schema)
        (Scenario.zipf_requests ~seed:(seed + 1) ~n:vertices ~requests ~skew
           ~arity)
    in
    let batch = max 1 batch in
    let walls = ref [] and total_ops = ref 0 and hits = ref 0 in
    let t0 = Unix.gettimeofday () in
    List.iter
      (fun group ->
        let w0 = Unix.gettimeofday () in
        let answers = Engine.answer_batch idx group in
        walls := (Unix.gettimeofday () -. w0) :: !walls;
        List.iter
          (fun (r, c) ->
            if not (Relation.is_empty r) then incr hits;
            total_ops := !total_ops + Cost.total c)
          answers)
      (chunks batch reqs);
    let wall = Unix.gettimeofday () -. t0 in
    let throughput = float_of_int requests /. wall in
    let sorted = Array.of_list !walls in
    Array.sort compare sorted;
    Format.printf
      "%d requests in %d-batches: %.0f answers/sec, %d hits, avg %d ops@."
      requests batch throughput !hits
      (!total_ops / requests);
    Format.printf "batch wall p50 %.4fs  p95 %.4fs  max %.4fs@."
      (percentile sorted 0.50) (percentile sorted 0.95) (percentile sorted 1.0);
    [
      ("budget", Json.Int budget);
      ("edges", Json.Int nedges);
      ("origin", Json.String origin);
      ("space", Json.Int (Engine.space idx));
      ("jobs", Json.Int (Pool.jobs ()));
      ("build_wall_s", Json.Float build_wall);
      ("requests", Json.Int requests);
      ("batch", Json.Int batch);
      ("skew", Json.Float skew);
      ("hits", Json.Int !hits);
      ("total_ops", Json.Int !total_ops);
      ("wall_s", Json.Float wall);
      ("answers_per_sec", Json.Float throughput);
      ("batch_wall_p50_s", Json.Float (percentile sorted 0.50));
      ("batch_wall_p95_s", Json.Float (percentile sorted 0.95));
      ("batch_wall_max_s", Json.Float (percentile sorted 1.0));
    ]
    @ json_cache_stats idx
  in
  Cmd.v (Cmd.info "serve" ~doc)
    Term.(
      const run $ serve_query_arg $ budget_arg $ edges_arg $ seed_arg
      $ requests_arg $ batch_arg $ skew_arg $ cache_budget_arg $ jobs_arg
      $ from_snapshot_arg $ json_arg)

let out_arg =
  Arg.(
    value & opt string "stt.snap"
    & info [ "o"; "out" ] ~docv:"FILE" ~doc:"Snapshot output path.")

let snapshot_cmd =
  let doc =
    "Build an index over a synthetic Zipf graph and save it as a versioned, \
     checksummed binary snapshot for $(b,stt serve --from-snapshot)."
  in
  let run q budget nedges seed cache_budget jobs out json_dir =
    with_artifact "snapshot" json_dir @@ fun () ->
    set_jobs jobs;
    let open Stt_relation in
    let vertices = Scenario.vertices_for_edges nedges in
    require_single_edge_relation "snapshot" q;
    let db = Scenario.synthetic_db ~seed ~vertices ~edges:nedges in
    Format.printf "building index (budget %d, jobs %d) over |E| = %d...@."
      budget (Pool.jobs ()) (Db.size db);
    let tb0 = Unix.gettimeofday () in
    let idx = Engine.build_auto ~max_pmtds:128 q ~db ~budget in
    let build_wall = Unix.gettimeofday () -. tb0 in
    Format.printf "space: %d stored tuples (built in %.3fs)@."
      (Engine.space idx) build_wall;
    (* an attached (empty) cache is persisted with the snapshot, so a
       server loading it starts caching without any flag of its own *)
    if cache_budget > 0 then
      Engine.attach_cache idx ~budget:cache_budget;
    let ts0 = Unix.gettimeofday () in
    match Engine.save idx out with
    | Error e ->
        Format.eprintf "stt snapshot: %s: %s@." out
          (Stt_store.Store.error_to_string e);
        exit 1
    | Ok bytes ->
        let save_wall = Unix.gettimeofday () -. ts0 in
        Format.printf "snapshot: %s, %d bytes (saved in %.3fs)@." out bytes
          save_wall;
        [
          ("budget", Json.Int budget);
          ("edges", Json.Int (Db.size db));
          ("space", Json.Int (Engine.space idx));
          ("jobs", Json.Int (Pool.jobs ()));
          ("build_wall_s", Json.Float build_wall);
          ("save_wall_s", Json.Float save_wall);
          ("snapshot", Json.String out);
          ("snapshot_bytes", Json.Int bytes);
          ("cache_budget", Json.Int cache_budget);
        ]
  in
  Cmd.v (Cmd.info "snapshot" ~doc)
    Term.(
      const run $ query_arg $ budget_arg $ edges_arg $ seed_arg
      $ cache_budget_arg $ jobs_arg $ out_arg $ json_arg)

let port_arg =
  Arg.(
    value & opt nonneg_int 7421
    & info [ "port" ] ~docv:"PORT" ~doc:"TCP port ($(b,0) picks an ephemeral one).")

let serve_agg_budget_arg =
  Arg.(
    value & opt nonneg_int 0
    & info [ "agg-budget" ] ~docv:"N"
        ~doc:
          "Enable semiring aggregates (COUNT/SUM/MIN/MAX) with at most \
           $(docv) precomputed table entries per kind; $(b,0) leaves \
           aggregates off.  Snapshots built with aggregates enabled serve \
           them regardless of this flag.")

let queue_arg =
  Arg.(
    value & opt pos_int 128
    & info [ "queue" ] ~docv:"N"
        ~doc:"Job-queue capacity; a full queue sheds requests as OVERLOADED.")

let io_backend_arg =
  let parse s =
    match s with
    | "auto" -> Ok None
    | _ -> (
        match Stt_net.Evloop.backend_of_string s with
        | Some b -> Ok (Some b)
        | None ->
            Error (`Msg (Printf.sprintf "unknown IO backend %S" s)))
  in
  let print ppf = function
    | None -> Format.pp_print_string ppf "auto"
    | Some b ->
        Format.pp_print_string ppf (Stt_net.Evloop.backend_name b)
  in
  Arg.(
    value
    & opt (conv (parse, print)) None
    & info [ "io-backend" ] ~docv:"BACKEND"
        ~doc:
          "IO readiness backend: $(b,epoll) (Linux, edge-triggered), \
           $(b,select) (portable), or $(b,auto) (fastest available).")

let serve_net_cmd =
  let doc =
    "Serve access requests over TCP: worker domains behind a bounded job \
     queue, per-request deadlines, graceful SIGTERM/SIGINT drain."
  in
  let run q budget nedges seed cache_budget jobs snapshot agg_budget port queue
      io_backend json_dir =
    with_artifact "serve-net" json_dir @@ fun () ->
    set_jobs jobs;
    let open Stt_net in
    let idx, origin =
      match snapshot with
      | Some path -> (
          match Engine.load path with
          | Ok idx ->
              Format.printf "loaded snapshot %s: space %d stored tuples@." path
                (Engine.space idx);
              (idx, "snapshot")
          | Error e ->
              Format.eprintf "stt serve-net: %s: %s@." path
                (Stt_store.Store.error_to_string e);
              exit 1)
      | None ->
          let q =
            match q with
            | Some q -> q
            | None ->
                Format.eprintf
                  "stt serve-net: a query is required unless --from-snapshot \
                   is given@.";
                exit 1
          in
          require_single_edge_relation "serve-net" q;
          let vertices = Scenario.vertices_for_edges nedges in
          let db = Scenario.synthetic_db ~seed ~vertices ~edges:nedges in
          Format.printf "building index (budget %d, jobs %d) over |E| = %d...@."
            budget
            (Stt_relation.Pool.jobs ())
            (Db.size db);
          let idx = Engine.build_auto ~max_pmtds:128 q ~db ~budget in
          Format.printf "space: %d stored tuples@." (Engine.space idx);
          if agg_budget > 0 then
            Engine.enable_agg idx ~db ~budget:agg_budget;
          (idx, "build")
    in
    if Engine.agg_enabled idx then
      Format.printf "aggregates: %s (budget %d, %d table entries)@."
        (String.concat ","
           (List.map Stt_semiring.Semiring.name (Engine.agg_kinds idx)))
        (Engine.agg_budget idx)
        (Engine.agg_table_size idx);
    if cache_budget > 0 then begin
      Engine.attach_cache idx ~budget:cache_budget;
      Format.printf "answer cache: %d stored tuples budget@." cache_budget
    end;
    let workers = Stt_relation.Pool.jobs () in
    let server =
      Server.start ~port ~workers ~queue_capacity:queue
        ~space:(Engine.space idx)
        ~agg_space:(fun () -> Engine.agg_table_size idx)
        ~cache_info:(Server.engine_cache_info idx)
        ?update_handler:
          (if Engine.supports_maintenance idx then
             Some (Server.engine_update_handler idx)
           else None)
        ?agg_handler:
          (if Engine.agg_enabled idx then
             Some (Server.engine_agg_handler idx)
           else None)
        ?io_backend
        (Server.engine_handler idx)
    in
    Format.printf "serving on 127.0.0.1:%d (%d workers, queue %d, io %s)@."
      (Server.port server) workers queue (Server.io_backend server);
    Format.printf "SIGTERM or Ctrl-C drains in-flight requests and exits@.";
    Format.print_flush ();
    let drain = Sys.Signal_handle (fun _ -> Server.stop server) in
    Sys.set_signal Sys.sigterm drain;
    Sys.set_signal Sys.sigint drain;
    while not (Server.stopping server) do
      try Unix.sleepf 0.2 with Unix.Unix_error (Unix.EINTR, _, _) -> ()
    done;
    let st = Server.wait server in
    Format.printf
      "drained: %d connections, %d received, %d answered, %d updated, %d \
       shed, %d past deadline, %d bad requests@."
      st.Server.connections st.Server.received st.Server.answered
      st.Server.updated st.Server.rejected_overload st.Server.rejected_deadline
      st.Server.bad_requests;
    let server_trace =
      match Json.of_string (Server.trace_json server) with
      | Ok j -> j
      | Error _ -> Json.Null
    in
    [
      ("origin", Json.String origin);
      ("space", Json.Int (Engine.space idx));
      ("port", Json.Int (Server.port server));
      ("workers", Json.Int workers);
      ("queue", Json.Int queue);
      ("io_backend", Json.String (Server.io_backend server));
      ("connections", Json.Int st.Server.connections);
      ("received", Json.Int st.Server.received);
      ("answered", Json.Int st.Server.answered);
      ("updated", Json.Int st.Server.updated);
      ("rejected_overload", Json.Int st.Server.rejected_overload);
      ("rejected_deadline", Json.Int st.Server.rejected_deadline);
      ("bad_requests", Json.Int st.Server.bad_requests);
      ("agg_enabled", Json.Bool (Engine.agg_enabled idx));
      ("agg_table_size", Json.Int (Engine.agg_table_size idx));
      ("server_trace", server_trace);
    ]
    @ json_cache_stats idx
  in
  Cmd.v (Cmd.info "serve-net" ~doc)
    Term.(
      const run $ serve_query_arg $ budget_arg $ edges_arg $ seed_arg
      $ cache_budget_arg $ jobs_arg $ from_snapshot_arg $ serve_agg_budget_arg
      $ port_arg $ queue_arg $ io_backend_arg $ json_arg)

(* ---------------------------------------------------------------- *)
(* route: the sharded tier's router process                           *)
(* ---------------------------------------------------------------- *)

let shard_endpoint_conv =
  let parse s =
    let fail () =
      Error
        (`Msg
          (Printf.sprintf
             "shard %S: expected [NAME=]HOST:PORT (e.g. shard-0=127.0.0.1:7421)"
             s))
    in
    let name, addr =
      match String.index_opt s '=' with
      | Some i ->
          (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))
      | None -> (s, s)
    in
    match String.rindex_opt addr ':' with
    | None -> fail ()
    | Some i -> (
        let host = String.sub addr 0 i in
        let port_s = String.sub addr (i + 1) (String.length addr - i - 1) in
        match int_of_string_opt port_s with
        | Some p when p > 0 && p < 65536 && name <> "" && host <> "" ->
            Ok { Stt_shard.Router.name; host; port = p }
        | _ -> fail ())
  in
  let print ppf (ep : Stt_shard.Router.endpoint) =
    Format.fprintf ppf "%s=%s:%d" ep.name ep.host ep.port
  in
  Arg.conv (parse, print)

let shard_endpoints_arg =
  Arg.(
    non_empty
    & opt_all shard_endpoint_conv []
    & info [ "shard" ] ~docv:"[NAME=]HOST:PORT"
        ~doc:
          "A replica to route to (repeatable).  NAME identifies the shard \
           on the consistent-hash ring; it defaults to HOST:PORT.")

let route_cmd =
  let doc =
    "Route access requests across replica shards: a consistent-hash ring \
     over canonical bound-variable keys, scatter/gather with mid-batch \
     failover, and fleet-aggregated protocol-v5 Health."
  in
  let run endpoints port queue jobs io_backend json_dir =
    with_artifact "route" json_dir @@ fun () ->
    set_jobs jobs;
    let module Router = Stt_shard.Router in
    let workers = Stt_relation.Pool.jobs () in
    let router =
      Router.start ~port ~workers ~queue_capacity:queue ?io_backend endpoints
    in
    Format.printf "routing on 127.0.0.1:%d (%d shards, %d workers, queue %d, io %s)@."
      (Router.port router)
      (List.length (Router.shards router))
      workers queue
      (Router.io_backend router);
    List.iter
      (fun (ep : Router.endpoint) ->
        Format.printf "  shard %s -> %s:%d@." ep.name ep.host ep.port)
      endpoints;
    Format.printf "SIGTERM or Ctrl-C drains in-flight requests and exits@.";
    Format.print_flush ();
    let drain = Sys.Signal_handle (fun _ -> Router.stop router) in
    Sys.set_signal Sys.sigterm drain;
    Sys.set_signal Sys.sigint drain;
    while not (Router.stopping router) do
      try Unix.sleepf 0.2 with Unix.Unix_error (Unix.EINTR, _, _) -> ()
    done;
    let st = Router.wait router in
    Format.printf
      "drained: %d connections, %d received, %d answered, %d shed, %d past \
       deadline, %d bad requests, %d shard errors, %d tuples re-routed, %d \
       shard restarts@."
      st.Stt_net.Core.connections st.Stt_net.Core.received
      st.Stt_net.Core.answered st.Stt_net.Core.rejected_overload
      st.Stt_net.Core.rejected_deadline st.Stt_net.Core.bad_requests
      (Router.shard_errors router)
      (Router.retried_tuples router)
      (Router.restarts router);
    let router_trace =
      match Json.of_string (Router.trace_json router) with
      | Ok j -> j
      | Error _ -> Json.Null
    in
    [
      ("port", Json.Int (Router.port router));
      ("workers", Json.Int workers);
      ("queue", Json.Int queue);
      ("io_backend", Json.String (Router.io_backend router));
      ( "shards",
        Json.List
          (List.map
             (fun (ep : Router.endpoint) ->
               Json.Obj
                 [
                   ("name", Json.String ep.name);
                   ("host", Json.String ep.host);
                   ("port", Json.Int ep.port);
                 ])
             endpoints) );
      ("connections", Json.Int st.Stt_net.Core.connections);
      ("received", Json.Int st.Stt_net.Core.received);
      ("answered", Json.Int st.Stt_net.Core.answered);
      ("rejected_overload", Json.Int st.Stt_net.Core.rejected_overload);
      ("rejected_deadline", Json.Int st.Stt_net.Core.rejected_deadline);
      ("bad_requests", Json.Int st.Stt_net.Core.bad_requests);
      ("shard_errors", Json.Int (Router.shard_errors router));
      ("retried_tuples", Json.Int (Router.retried_tuples router));
      ("shard_restarts", Json.Int (Router.restarts router));
      ("router_trace", router_trace);
    ]
  in
  Cmd.v (Cmd.info "route" ~doc)
    Term.(
      const run $ shard_endpoints_arg $ port_arg $ queue_arg $ jobs_arg
      $ io_backend_arg $ json_arg)

let host_arg =
  Arg.(
    value & opt string "127.0.0.1"
    & info [ "host" ] ~docv:"HOST" ~doc:"Server host to connect to.")

let connections_arg =
  Arg.(
    value & opt pos_int 8
    & info [ "connections" ] ~docv:"N"
        ~doc:"Concurrent client connections, multiplexed over the drivers.")

let drivers_arg =
  Arg.(
    value & opt pos_int 8
    & info [ "drivers" ] ~docv:"N"
        ~doc:
          "Load-generating domains; each drives its share of the \
           connections in lockstep rounds (clamped to the connection \
           count).")

let net_requests_arg =
  Arg.(
    value & opt pos_int 10000
    & info [ "requests" ] ~docv:"N"
        ~doc:"Total access tuples across all connections.")

let active_arg =
  Arg.(
    value & opt nonneg_int 0
    & info [ "active" ] ~docv:"N"
        ~doc:
          "Connections that drive requests ($(b,0) = all).  The rest \
           connect and park idle for the whole run — the idle-keepalive \
           fleet that separates an O(watched)-per-wakeup readiness \
           backend from an edge-triggered one.")

let net_batch_arg =
  Arg.(
    value & opt pos_int 16
    & info [ "batch" ] ~docv:"N" ~doc:"Access tuples per request frame.")

let deadline_ms_arg =
  Arg.(
    value & opt nonneg_int 0
    & info [ "deadline-ms" ] ~docv:"MS"
        ~doc:"Per-request serving budget in milliseconds ($(b,0) = none).")

let verify_arg =
  Arg.(
    value & flag
    & info [ "verify" ]
        ~doc:
          "Build a local index over the same synthetic graph and check every \
           answered tuple's rows against a direct $(b,answer_batch) — \
           mismatches fail the run.")

let bench_artifact_arg =
  Arg.(
    value & opt string "BENCH_emp-net.json"
    & info [ "artifact" ] ~docv:"FILE"
        ~doc:"Benchmark artifact output path (schema $(b,stt-bench/1)).")

let speedup_vs_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "speedup-vs" ] ~docv:"FILE"
        ~doc:
          "Prior bench-net artifact to compare against (e.g. the same \
           workload served through the $(b,select) backend): its \
           answers/sec and the speedup ratio are recorded in this run's \
           artifact as $(b,baseline_answers_per_sec) and \
           $(b,backend_speedup).")

let shards_arg =
  Arg.(
    value & opt nonneg_int 0
    & info [ "shards" ] ~docv:"N"
        ~doc:
          "Self-hosted sharded mode: build the index once, snapshot it, \
           spawn $(docv) replica processes booted from shipped copies of \
           that snapshot, and drive the load through an in-process \
           consistent-hash router.  $(b,0) (the default) benches directly \
           against --host/--port.")

let shard_jobs_arg =
  Arg.(
    value & opt pos_int 2
    & info [ "shard-jobs" ] ~docv:"N"
        ~doc:"Worker domains per replica process (sharded mode).")

let router_jobs_arg =
  Arg.(
    value & opt pos_int 8
    & info [ "router-jobs" ] ~docv:"N"
        ~doc:
          "Router worker domains, bounding concurrent scatter/gather \
           rounds (sharded mode).")

let drain_after_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "drain-after" ] ~docv:"S"
        ~doc:
          "Sharded mode: after $(docv) seconds of load, drain the \
           highest-numbered shard live — ring removal, then SIGTERM — \
           so in-flight tuples re-route to the surviving owners.  The \
           zero-loss gate still applies.")

let agg_arg =
  let parse s =
    match Stt_semiring.Semiring.of_name s with
    | Some k -> Ok (Some k)
    | None ->
        Error
          (`Msg
            (Printf.sprintf
               "unknown aggregate %S (expected count, sum, min or max)" s))
  in
  let print ppf = function
    | None -> Format.pp_print_string ppf "none"
    | Some k -> Format.pp_print_string ppf (Stt_semiring.Semiring.name k)
  in
  Arg.(
    value
    & opt (conv (parse, print)) None
    & info [ "agg" ] ~docv:"KIND"
        ~doc:
          "Aggregate workload: drive $(docv) (count, sum, min or max) \
           aggregate frames instead of tuple requests, and check every \
           reply against a direct local $(b,answer_agg) over the same \
           synthetic data — any disagreement fails the run.  With \
           $(b,--shards N) the fleet snapshot ships the aggregate tables \
           and replies are router-merged partials.")

let rec json_of_health (h : Stt_net.Frame.health) =
  let ch = h.Stt_net.Frame.cache in
  Json.Obj
    [
      ("ready", Json.Bool h.Stt_net.Frame.ready);
      ("space", Json.Int h.Stt_net.Frame.space);
      ("agg_space", Json.Int h.Stt_net.Frame.agg_space);
      ( "total_space",
        Json.Int
          (h.Stt_net.Frame.space + h.Stt_net.Frame.agg_space
         + h.Stt_net.Frame.cache.Stt_net.Frame.cache_used) );
      ("workers", Json.Int h.Stt_net.Frame.workers);
      ("queue_capacity", Json.Int h.Stt_net.Frame.queue_capacity);
      ("queue_depth", Json.Int h.Stt_net.Frame.queue_depth);
      ("uptime_ns", Json.Int h.Stt_net.Frame.uptime_ns);
      ("io_backend", Json.String h.Stt_net.Frame.io_backend);
      ( "cache",
        Json.Obj
          [
            ("budget", Json.Int ch.Stt_net.Frame.cache_budget);
            ("used", Json.Int ch.Stt_net.Frame.cache_used);
            ("entries", Json.Int ch.Stt_net.Frame.cache_entries);
            ("hits", Json.Int ch.Stt_net.Frame.cache_hits);
            ("misses", Json.Int ch.Stt_net.Frame.cache_misses);
          ] );
      ( "shards",
        Json.List
          (List.map
             (fun (name, sub) ->
               Json.Obj
                 [ ("name", Json.String name); ("health", json_of_health sub) ])
             h.Stt_net.Frame.shards) );
    ]

let bench_net_cmd =
  let doc =
    "Closed-loop Zipf load generator against $(b,stt serve-net) — or, with \
     $(b,--shards N), against a self-hosted fleet of snapshot-shipped \
     replicas behind a consistent-hash router: reports answers/sec and \
     p50/p95/p99 latency, with zero-loss accounting."
  in
  let run q budget nedges seed host port connections drivers active requests
      batch skew cache_budget deadline_ms verify artifact speedup_vs shards
      shard_jobs router_jobs drain_after agg io_backend =
    require_single_edge_relation "bench-net" q;
    let open Stt_net in
    let sharded = shards > 0 in
    (* the sharded and aggregate experiments get their own artifact
       lineages *)
    let artifact =
      if artifact = "BENCH_emp-net.json" then
        match agg with
        | Some _ -> "BENCH_agg-net.json"
        | None -> if sharded then "BENCH_emp-shard.json" else artifact
      else artifact
    in
    (* resolve the comparison artifact up front, so a bad path fails
       before the minutes-long load runs *)
    let baseline =
      match speedup_vs with
      | None -> None
      | Some file -> (
          let fail msg =
            Format.eprintf "stt bench-net: --speedup-vs %s: %s@." file msg;
            exit 1
          in
          match
            In_channel.with_open_text file In_channel.input_all
            |> Json.of_string
          with
          | exception Sys_error e -> fail e
          | Error e -> fail e
          | Ok doc -> (
              let data = Json.member "data" doc in
              match Option.bind data (Json.member "answers_per_sec") with
              | Some (Json.Float f) when f > 0.0 ->
                  let backend =
                    match Option.bind data (Json.member "io_backend") with
                    | Some (Json.String s) -> s
                    | _ -> "unknown"
                  in
                  Some (file, backend, f)
              | _ -> fail "no positive .data.answers_per_sec"))
    in
    let vertices = Scenario.vertices_for_edges nedges in
    let arity = Varset.cardinal q.Cq.access in
    (* one local build serves both the snapshot the fleet boots from and
       the --verify reference — deliberately uncached either way: the
       reference answers come from the direct answer_batch, and replicas
       attach their own caches per --cache-budget *)
    let built = Hashtbl.create 2 in
    let build_index b =
      match Hashtbl.find_opt built b with
      | Some idx -> idx
      | None ->
          let db = Scenario.synthetic_db ~seed ~vertices ~edges:nedges in
          Format.printf "building index (budget %d) over |E| = %d...@." b
            (Db.size db);
          Format.print_flush ();
          let idx = Engine.build_auto ~max_pmtds:128 q ~db ~budget:b in
          Hashtbl.replace built b idx;
          idx
    in
    (* aggregate mode needs semiring state on the benched index: in
       sharded mode it must be there before the snapshot is saved (that
       is how the replicas get it), and either way the same index serves
       as the direct-evaluation reference.  The db is rebuilt from the
       same seed, which yields the identical edge set. *)
    let ensure_agg idx =
      if not (Engine.agg_enabled idx) then begin
        let db = Scenario.synthetic_db ~seed ~vertices ~edges:nedges in
        Engine.enable_agg idx ~db ~budget
      end
    in
    let verify_fn =
      if not verify then None
      else begin
        (* answers are invariant under the space budget — only the serving
           cost moves along the tradeoff curve — so in sharded mode the
           reference index gets a generous budget: verification then runs
           near lookup speed in this process instead of competing with
           the fleet for the same cores at the benched (tight) budget *)
        let vb = if sharded then max budget 8000 else budget in
        let h = Server.engine_handler (build_index vb) in
        Some
          (fun ~arity tuples ->
            List.map (fun (rows, _, _) -> rows) (h ~arity tuples))
      end
    in
    (* sharded mode self-hosts the serving side: snapshot -> ship to N
       replica processes -> route through an in-process router, and the
       load below targets the router instead of --host/--port *)
    let queue_capacity_for_fleet = 256 in
    let fleet_ctx =
      if not sharded then None
      else begin
        let module Fleet = Stt_shard.Fleet in
        let module Router = Stt_shard.Router in
        let idx = build_index budget in
        if agg <> None then ensure_agg idx;
        let dir =
          Filename.concat
            (Filename.get_temp_dir_name ())
            (Printf.sprintf "stt-shard-%d" (Unix.getpid ()))
        in
        (try Unix.mkdir dir 0o700
         with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
        let snap = Filename.concat dir "bench.snap" in
        (match Engine.save idx snap with
        | Ok n -> Format.printf "snapshot: %s (%d stored tuples)@." snap n
        | Error e ->
            Format.eprintf "stt bench-net: saving snapshot: %s@."
              (Stt_store.Store.error_to_string e);
            exit 1);
        Format.printf "spawning %d replicas (%d workers each, queue %d)...@."
          shards shard_jobs queue_capacity_for_fleet;
        Format.print_flush ();
        let fleet =
          match
            Fleet.launch ~exe:Sys.executable_name ~snapshot:snap ~dir
              ~count:shards ~workers:shard_jobs
              ~queue:queue_capacity_for_fleet ~cache_budget
              ?io_backend:(Option.map Evloop.backend_name io_backend)
              ()
          with
          | Ok f -> f
          | Error msg ->
              Format.eprintf "stt bench-net: %s@." msg;
              exit 1
        in
        let eps = Fleet.endpoints fleet in
        List.iter
          (fun (ep : Router.endpoint) ->
            Format.printf "  %s on %s:%d@." ep.name ep.host ep.port)
          eps;
        let router =
          Router.start ~port:0 ~workers:router_jobs
            ~queue_capacity:queue_capacity_for_fleet ?io_backend eps
        in
        Format.printf "router on 127.0.0.1:%d (%d workers)@."
          (Router.port router) router_jobs;
        Format.print_flush ();
        Some (router, fleet, dir)
      end
    in
    let host, port =
      match fleet_ctx with
      | Some (router, _, _) -> ("127.0.0.1", Stt_shard.Router.port router)
      | None -> (host, port)
    in
    let teardown () =
      match fleet_ctx with
      | None -> ()
      | Some (router, fleet, dir) ->
          Stt_shard.Router.stop router;
          ignore (Stt_shard.Router.wait router);
          Stt_shard.Fleet.shutdown fleet;
          (try
             Array.iter
               (fun f ->
                 try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
               (Sys.readdir dir)
           with Sys_error _ -> ());
          (try Unix.rmdir dir with Unix.Unix_error _ -> ())
    in
    let drained = ref None in
    let run_over = Atomic.make false in
    let drain_domain =
      match (fleet_ctx, drain_after) with
      | Some (router, fleet, _), Some s when shards > 1 ->
          Some
            (Domain.spawn (fun () ->
                 (* sleep in slices so a --drain-after beyond the run's
                    length doesn't leave this domain blocking the join *)
                 let deadline = Unix.gettimeofday () +. s in
                 while
                   (not (Atomic.get run_over))
                   && Unix.gettimeofday () < deadline
                 do
                   Unix.sleepf 0.05
                 done;
                 if not (Atomic.get run_over) then begin
                   let name = Printf.sprintf "shard-%d" (shards - 1) in
                   Stt_shard.Router.drain_shard router name;
                   if Stt_shard.Fleet.drain fleet name then drained := Some name
                 end))
      | _ -> None
    in
    let join_drain () =
      Atomic.set run_over true;
      Option.iter Domain.join drain_domain
    in
    match agg with
    | Some k ->
        (* ------------------------------------------------------------ *)
        (* aggregate mode: Frame.Agg frames, every reply checked against *)
        (* a direct local answer_agg over the same synthetic data        *)
        (* ------------------------------------------------------------ *)
        let kind_name = Stt_semiring.Semiring.name k in
        let kind = Stt_semiring.Semiring.to_tag k in
        let ref_idx = build_index budget in
        ensure_agg ref_idx;
        let schema = Engine.access_schema ref_idx in
        let frames =
          let rec chunk = function
            | [] -> []
            | l ->
                let rec take n acc rest =
                  match (n, rest) with
                  | 0, rest | _, ([] as rest) -> (List.rev acc, rest)
                  | n, x :: rest -> take (n - 1) (x :: acc) rest
                in
                let frame, rest = take batch [] l in
                frame :: chunk rest
          in
          chunk
            (Scenario.zipf_requests ~seed:(seed + 1) ~n:vertices ~requests
               ~skew ~arity)
        in
        let frame_arr = Array.of_list frames in
        let nframes = Array.length frame_arr in
        let pool = max 1 (min (min drivers connections) nframes) in
        Format.printf
          "%d %s-aggregate frames (%d tuples each) over %d connections@."
          nframes kind_name batch pool;
        Format.print_flush ();
        let next = Atomic.make 0 in
        let t0 = Unix.gettimeofday () in
        let worker () =
          match Client.connect ~host ~port () with
          | Error e -> Error (Frame.error_to_string e)
          | Ok c ->
              let out = ref [] in
              let rec loop () =
                let i = Atomic.fetch_and_add next 1 in
                if i < nframes then begin
                  let tuples = frame_arr.(i) in
                  let s0 = Unix.gettimeofday () in
                  let res =
                    match
                      Client.rpc c
                        (Frame.Agg
                           {
                             id = i;
                             deadline_us = deadline_ms * 1000;
                             kind;
                             arity;
                             tuples;
                           })
                    with
                    | Ok (Frame.Agg_reply { id; value; _ }) when id = i ->
                        Ok value
                    | Ok (Frame.Rejected { reject; _ }) ->
                        Error
                          (match reject with
                          | Frame.Overloaded -> "overloaded"
                          | Frame.Deadline_exceeded -> "deadline exceeded"
                          | Frame.Bad_request m -> "bad request: " ^ m)
                    | Ok _ -> Error "unexpected reply frame"
                    | Error e -> Error (Frame.error_to_string e)
                  in
                  let rtt_us = (Unix.gettimeofday () -. s0) *. 1e6 in
                  out := (tuples, res, rtt_us) :: !out;
                  loop ()
                end
              in
              loop ();
              Client.close c;
              Ok !out
        in
        let joined =
          List.map Domain.join (List.init pool (fun _ -> Domain.spawn worker))
        in
        let wall = Unix.gettimeofday () -. t0 in
        join_drain ();
        let conn_errors =
          List.filter_map (function Error m -> Some m | Ok _ -> None) joined
        in
        List.iter
          (fun m -> Format.eprintf "stt bench-net: connect: %s@." m)
          conn_errors;
        let replies =
          List.concat_map (function Ok l -> l | Error _ -> []) joined
        in
        (* verification runs sequentially after the load: the engine's op
           counters are not domain-safe, and this keeps the timed window
           free of local evaluation work *)
        let mismatched = ref 0 and answered = ref 0 and errors = ref 0 in
        let sent = ref 0 in
        List.iter
          (fun (tuples, res, _) ->
            sent := !sent + List.length tuples;
            match res with
            | Error _ -> incr errors
            | Ok value ->
                incr answered;
                let q_a = Stt_relation.Relation.of_list schema tuples in
                let expected, _ = Engine.answer_agg ref_idx k ~q_a in
                if expected <> value then begin
                  incr mismatched;
                  if !mismatched <= 3 then
                    Format.eprintf
                      "stt bench-net: %s aggregate mismatch: served %d, \
                       direct %d@."
                      kind_name value expected
                end)
          replies;
        let rtts =
          List.filter_map
            (fun (_, res, rtt) ->
              match res with Ok _ -> Some rtt | Error _ -> None)
            replies
          |> Array.of_list
        in
        Array.sort compare rtts;
        let pct p =
          if Array.length rtts = 0 then 0.0
          else
            rtts.(min
                    (Array.length rtts - 1)
                    (int_of_float (p *. float_of_int (Array.length rtts))))
        in
        let identical =
          !answered > 0 && !mismatched = 0 && !errors = 0 && conn_errors = []
        in
        let shard_fields =
          match fleet_ctx with
          | None -> []
          | Some (router, _, _) ->
              [
                ("shards", Json.Int shards);
                ("shard_jobs", Json.Int shard_jobs);
                ("router_jobs", Json.Int router_jobs);
                ( "shard_errors",
                  Json.Int (Stt_shard.Router.shard_errors router) );
                ( "retried_tuples",
                  Json.Int (Stt_shard.Router.retried_tuples router) );
              ]
        in
        teardown ();
        Format.printf
          "%d tuples in %d frames: %d answered, %d errors, %d mismatched \
           (identical_answers=%b)@."
          !sent nframes !answered !errors !mismatched identical;
        Format.printf
          "%.0f aggregates/sec   rtt p50 %.0fus  p95 %.0fus  p99 %.0fus@."
          (float_of_int !answered /. wall)
          (pct 0.50) (pct 0.95) (pct 0.99);
        let doc =
          Json.Obj
            [
              ("schema", Json.String "stt-bench/1");
              ("experiment", Json.String "agg-net");
              ("wall_s", Json.Float wall);
              ( "data",
                Json.Obj
                  ([
                     ("host", Json.String host);
                     ("port", Json.Int port);
                     ("agg", Json.String kind_name);
                     ("budget", Json.Int budget);
                     ("edges", Json.Int nedges);
                     ("connections", Json.Int pool);
                     ("requests", Json.Int requests);
                     ("batch", Json.Int batch);
                     ("skew", Json.Float skew);
                     ("frames", Json.Int nframes);
                     ("sent", Json.Int !sent);
                     ("answered_frames", Json.Int !answered);
                     ("errors", Json.Int !errors);
                     ("mismatched", Json.Int !mismatched);
                     ("identical_answers", Json.Bool identical);
                     ("elapsed_s", Json.Float wall);
                     ( "aggs_per_sec",
                       Json.Float (float_of_int !answered /. wall) );
                     ("p50_us", Json.Float (pct 0.50));
                     ("p95_us", Json.Float (pct 0.95));
                     ("p99_us", Json.Float (pct 0.99));
                     ( "agg_table_size",
                       Json.Int (Engine.agg_table_size ref_idx) );
                     ( "host_cpus",
                       Json.Int (Domain.recommended_domain_count ()) );
                   ]
                  @ shard_fields) );
            ]
        in
        Json.to_file artifact doc;
        Format.printf "artifact: %s@." artifact;
        if not identical then begin
          Format.eprintf
            "stt bench-net: aggregate run not clean (answered %d, errors %d, \
             mismatched %d)@."
            !answered !errors !mismatched;
          exit 1
        end
    | None ->
    Obs.set_enabled true;
    Obs.reset ();
    let cfg =
      {
        Loadgen.host;
        port;
        connections;
        requests;
        batch;
        arity;
        values = vertices;
        skew;
        seed = seed + 1;
        deadline_ms;
        drivers;
        active;
      }
    in
    let driven = if active = 0 then connections else active in
    Format.printf
      "%d connections (%d driven, %d parked) x closed loop (%d drivers), %d \
       requests in %d-batches@."
      connections driven
      (connections - driven)
      (min drivers driven) requests batch;
    let t0 = Unix.gettimeofday () in
    match Loadgen.run ?verify:verify_fn cfg with
    | Error msg ->
        join_drain ();
        teardown ();
        Format.eprintf "stt bench-net: %s@." msg;
        exit 1
    | Ok r ->
        let wall = Unix.gettimeofday () -. t0 in
        join_drain ();
        (* one extra connection after the run: the server's Health frame
           carries its cache occupancy and hit counts, so the artifact
           records the hit rate this load actually achieved *)
        let server_health =
          match Client.connect ~host ~port () with
          | Error _ -> None
          | Ok c ->
              let resp = Client.rpc c (Frame.Health { id = 0 }) in
              Client.close c;
              (match resp with
              | Ok (Frame.Health_reply { health; _ }) -> Some health
              | Ok _ | Error _ -> None)
        in
        let server_cache =
          Option.map (fun h -> h.Frame.cache) server_health
        in
        let server_io_backend =
          match server_health with
          | Some h -> h.Frame.io_backend
          | None -> "unknown"
        in
        (* in sharded mode the fleet health sums cache budgets across
           shards, so the per-server comparison below does not apply *)
        (match server_cache with
        | Some ch when (not sharded) && ch.Frame.cache_budget <> cache_budget
          ->
            Format.printf
              "note: server cache budget %d differs from --cache-budget %d@."
              ch.Frame.cache_budget cache_budget
        | _ -> ());
        let shard_fields =
          match fleet_ctx with
          | None -> []
          | Some (router, _, _) ->
              (match !drained with
              | Some name ->
                  Format.printf
                    "drained %s mid-run: %d tuples re-routed, %d shard \
                     errors@."
                    name
                    (Stt_shard.Router.retried_tuples router)
                    (Stt_shard.Router.shard_errors router)
              | None -> ());
              [
                ("shards", Json.Int shards);
                ("shard_jobs", Json.Int shard_jobs);
                ("router_jobs", Json.Int router_jobs);
                ( "drained_shard",
                  match !drained with
                  | Some n -> Json.String n
                  | None -> Json.Null );
                ( "shard_errors",
                  Json.Int (Stt_shard.Router.shard_errors router) );
                ( "retried_tuples",
                  Json.Int (Stt_shard.Router.retried_tuples router) );
                ("shard_restarts", Json.Int (Stt_shard.Router.restarts router));
                ( "fleet_health",
                  match server_health with
                  | Some h -> json_of_health h
                  | None -> Json.Null );
              ]
        in
        teardown ();
        let json_server_cache =
          match server_cache with
          | None -> Json.Null
          | Some ch ->
              let lookups = ch.Frame.cache_hits + ch.Frame.cache_misses in
              Json.Obj
                [
                  ("budget", Json.Int ch.Frame.cache_budget);
                  ("used", Json.Int ch.Frame.cache_used);
                  ("entries", Json.Int ch.Frame.cache_entries);
                  ("hits", Json.Int ch.Frame.cache_hits);
                  ("misses", Json.Int ch.Frame.cache_misses);
                  ( "hit_rate",
                    Json.Float
                      (if lookups = 0 then 0.0
                       else float_of_int ch.Frame.cache_hits
                            /. float_of_int lookups) );
                ]
        in
        Format.printf
          "%d sent: %d answered (%d rows), %d shed, %d past deadline, %d \
           lost, %d duplicated, %d mismatched, %d errors@."
          r.Loadgen.sent r.Loadgen.answered r.Loadgen.rows
          r.Loadgen.rejected_overload r.Loadgen.rejected_deadline
          r.Loadgen.lost r.Loadgen.duplicated r.Loadgen.mismatched
          r.Loadgen.errors;
        Format.printf
          "%.0f answers/sec   rtt p50 %.0fus  p95 %.0fus  p99 %.0fus@."
          r.Loadgen.throughput r.Loadgen.p50_us r.Loadgen.p95_us
          r.Loadgen.p99_us;
        let speedup_fields =
          match baseline with
          | None -> []
          | Some (file, backend, base_tput) ->
              let ratio = r.Loadgen.throughput /. base_tput in
              Format.printf
                "vs %s (%s, %.0f answers/sec): %.2fx@." file backend
                base_tput ratio;
              [
                ("baseline_artifact", Json.String file);
                ("baseline_io_backend", Json.String backend);
                ("baseline_answers_per_sec", Json.Float base_tput);
                ("backend_speedup", Json.Float ratio);
              ]
        in
        let clean =
          r.Loadgen.answered > 0 && r.Loadgen.lost = 0
          && r.Loadgen.duplicated = 0 && r.Loadgen.mismatched = 0
          && r.Loadgen.errors = 0
        in
        let doc =
          Json.Obj
            [
              ("schema", Json.String "stt-bench/1");
              ( "experiment",
                Json.String (if sharded then "emp-shard" else "emp-net") );
              ("wall_s", Json.Float wall);
              ( "data",
                Json.Obj
                  ([
                    ("host", Json.String host);
                    ("port", Json.Int port);
                    ("connections", Json.Int connections);
                    ("active", Json.Int driven);
                    ("drivers", Json.Int (min drivers driven));
                    ("io_backend", Json.String server_io_backend);
                    ("requests", Json.Int requests);
                    ("batch", Json.Int batch);
                    ("skew", Json.Float skew);
                    ("deadline_ms", Json.Int deadline_ms);
                    ("sent", Json.Int r.Loadgen.sent);
                    ("answered", Json.Int r.Loadgen.answered);
                    ("rows", Json.Int r.Loadgen.rows);
                    ("rejected_overload", Json.Int r.Loadgen.rejected_overload);
                    ("rejected_deadline", Json.Int r.Loadgen.rejected_deadline);
                    ("lost", Json.Int r.Loadgen.lost);
                    ("duplicated", Json.Int r.Loadgen.duplicated);
                    ("mismatched", Json.Int r.Loadgen.mismatched);
                    ("errors", Json.Int r.Loadgen.errors);
                    ("verified", Json.Bool (verify && r.Loadgen.mismatched = 0));
                    ("elapsed_s", Json.Float r.Loadgen.elapsed_s);
                    ("answers_per_sec", Json.Float r.Loadgen.throughput);
                    ("p50_us", Json.Float r.Loadgen.p50_us);
                    ("p95_us", Json.Float r.Loadgen.p95_us);
                    ("p99_us", Json.Float r.Loadgen.p99_us);
                    ("cache_budget", Json.Int cache_budget);
                    ("server_cache", json_server_cache);
                    (* shard-scaling ratios only mean something relative
                       to the cores the fleet could actually use *)
                    ("host_cpus", Json.Int (Domain.recommended_domain_count ()));
                  ]
                  @ shard_fields @ speedup_fields) );
              ("trace", Obs.trace ());
            ]
        in
        Json.to_file artifact doc;
        Format.printf "artifact: %s@." artifact;
        Obs.set_enabled false;
        if not clean then begin
          Format.eprintf
            "stt bench-net: run not clean (answered %d, lost %d, duplicated \
             %d, mismatched %d, errors %d)@."
            r.Loadgen.answered r.Loadgen.lost r.Loadgen.duplicated
            r.Loadgen.mismatched r.Loadgen.errors;
          exit 1
        end
  in
  Cmd.v (Cmd.info "bench-net" ~doc)
    Term.(
      const run $ query_arg $ budget_arg $ edges_arg $ seed_arg $ host_arg
      $ port_arg $ connections_arg $ drivers_arg $ active_arg
      $ net_requests_arg
      $ net_batch_arg $ skew_arg $ cache_budget_arg $ deadline_ms_arg
      $ verify_arg $ bench_artifact_arg $ speedup_vs_arg $ shards_arg
      $ shard_jobs_arg $ router_jobs_arg $ drain_after_arg $ agg_arg
      $ io_backend_arg)

let main =
  let doc = "space-time tradeoffs for conjunctive queries with access patterns" in
  Cmd.group
    (Cmd.info "stt" ~version:"1.0.0" ~doc)
    [
      queries_cmd;
      pmtds_cmd;
      rules_cmd;
      tradeoff_cmd;
      curve_cmd;
      demo_cmd;
      serve_cmd;
      serve_net_cmd;
      route_cmd;
      snapshot_cmd;
      bench_net_cmd;
    ]

(* audit: no command may die with a raw backtrace — untyped escapes
   (Failure, Sys_error, stray Unix errors) become one-line `stt: ...`
   messages with a non-zero exit, matching the typed error paths above *)
let () =
  match Cmd.eval ~catch:false main with
  | code -> exit code
  | exception Failure msg | exception Sys_error msg ->
      Format.eprintf "stt: %s@." msg;
      exit 1
  | exception Unix.Unix_error (e, fn, arg) ->
      Format.eprintf "stt: %s%s: %s@." fn
        (if arg = "" then "" else " " ^ arg)
        (Unix.error_message e);
      exit 1
