(* Batched access requests (|Q_A| > 1), the generalization the paper
   introduces over prior work: a stream of single-tuple requests can be
   batched into one access relation and answered at once.  The engine
   answers a batch in one pass; this example shows batching beating
   one-by-one answering on total operations. *)

open Stt_hypergraph
open Stt_core
open Stt_relation
open Stt_workload

let () =
  print_endline "== batched access requests for 2-reachability ==";
  let vertices = 400 in
  let edges = Graphs.zipf_both ~seed:33 ~vertices ~edges:4_000 ~s:1.1 in
  let db = Db.create () in
  Db.add_pairs db "R" edges;
  let q = Cq.Library.k_path 2 in
  let index = Engine.build_auto q ~db ~budget:2_000 in
  Printf.printf "graph |E| = %d, index space = %d\n\n" (Db.size db)
    (Engine.space index);

  let rng = Rng.create 3 in
  let requests =
    List.init 500 (fun _ -> [| Rng.int rng vertices; Rng.int rng vertices |])
  in

  (* one by one *)
  let (), one_by_one =
    Cost.measure (fun () ->
        List.iter (fun req -> ignore (Engine.answer_tuple index req)) requests)
  in
  Printf.printf "one-by-one: %d total ops for %d requests\n"
    (Cost.total one_by_one) (List.length requests);

  (* batched *)
  let q_a = Relation.of_list (Engine.access_schema index) requests in
  let answers, batched =
    Cost.measure (fun () -> Engine.answer index ~q_a)
  in
  Printf.printf "batched:    %d total ops, %d of %d requests reachable\n"
    (Cost.total batched)
    (Relation.cardinal answers)
    (Relation.cardinal q_a);

  (* answer_batch: the serving API — per-request answers and per-request
     cost shares, while still paying the batch's shared work only once *)
  let schema = Engine.access_schema index in
  let reqs = List.map (fun t -> Relation.singleton schema t) requests in
  let per_request, total =
    Cost.scoped (fun () -> Engine.answer_batch index reqs)
  in
  let hits =
    List.length (List.filter (fun (r, _) -> not (Relation.is_empty r)) per_request)
  in
  let worst =
    List.fold_left (fun acc (_, c) -> max acc (Cost.total c)) 0 per_request
  in
  Printf.printf
    "answer_batch: %d total ops, %d hits; worst per-request share %d ops\n"
    (Cost.total total) hits worst;
  print_endline
    "\n(batching shares the per-request plan overhead and deduplicates\n\
    \ repeated probes — Section 2.1's motivation for |Q_A| > 1;\n\
    \ answer_batch returns each request its own answer and cost share)"
