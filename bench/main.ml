(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (Table 1, Figures 1-5, Examples 6.2/6.3) plus empirical
   space-time sweeps that validate the tradeoff *shapes* on synthetic
   workloads, and Bechamel wall-clock microbenchmarks.

   Run everything:        dune exec bench/main.exe
   Run one experiment:    dune exec bench/main.exe -- tab1 fig3a emp-setdisj
   List experiments:      dune exec bench/main.exe -- --list *)

open Stt_hypergraph
open Stt_decomp
open Stt_core
open Stt_relation
open Stt_lp
open Stt_workload
open Stt_yannakakis
open Stt_obs

let rule_header () = print_endline (String.make 72 '-')

let section id title =
  Printf.printf "\n";
  rule_header ();
  Printf.printf "[%s] %s\n" id title;
  rule_header ()

(* ------------------------------------------------------------------ *)
(* machine-readable artifacts                                           *)
(*                                                                      *)
(* Every experiment records its numbers into a flat key → JSON map as   *)
(* it prints them; the driver writes BENCH_<id>.json (schema            *)
(* "stt-bench/1", see DESIGN.md) with those numbers plus the            *)
(* observability trace of the run — each table gets a                   *)
(* machine-readable twin.                                               *)
(* ------------------------------------------------------------------ *)

let artifact_dir = ref "."
let art : (string * Json.t) list ref = ref []
let record k v = art := (k, v) :: !art
let json_rat r = Json.String (Rat.to_string r)

(* Monotonic wall clock, so every op-count snapshot in the artifacts has
   a wall-clock twin and future PRs inherit a perf trajectory. *)
let now_s () = Int64.to_float (Monotonic_clock.now ()) *. 1e-9

let timed f =
  let t0 = now_s () in
  let x = f () in
  (x, now_s () -. t0)

let json_tradeoff (t : Tradeoff.t) =
  Json.Obj
    [
      ("s_exp", json_rat t.Tradeoff.s_exp);
      ("t_exp", json_rat t.Tradeoff.t_exp);
      ("d_exp", json_rat t.Tradeoff.d_exp);
      ("q_exp", json_rat t.Tradeoff.q_exp);
      ("pretty", Json.String (Format.asprintf "%a" Tradeoff.pp t));
    ]

let json_snapshot (s : Cost.snapshot) =
  Json.Obj
    [
      ("probes", Json.Int s.Cost.probes);
      ("tuples", Json.Int s.Cost.tuples);
      ("scans", Json.Int s.Cost.scans);
      ("total", Json.Int (Cost.total s));
    ]

let json_logs_curve rows =
  Json.List
    (List.map
       (fun (x, y) ->
         Json.Obj [ ("logs", json_rat x); ("logt", json_rat y) ])
       rows)

(* ------------------------------------------------------------------ *)
(* shared empirical-gate helpers                                        *)
(* ------------------------------------------------------------------ *)

(* The deterministic twin of a wall-clock speedup: ops the slow side
   spends per op of the fast side.  The machine-independent regression
   gate shared by emp-cache, emp-agg and emp-factor. *)
let ops_ratio ~slow ~fast =
  float_of_int slow /. float_of_int (max 1 fast)

(* Flat rows per stored singleton — how many logical tuples one unit of
   space budget holds.  1.0 for flat storage; the emp-factor gate wants
   the factorized engine well above it. *)
let compression_ratio ~rows ~size =
  float_of_int rows /. float_of_int (max 1 size)

(* positionally aligned answer streams must agree relation-for-relation *)
let identical_relations a b = List.for_all2 Relation.equal a b

(* ------------------------------------------------------------------ *)
(* shared symbolic helpers                                              *)
(* ------------------------------------------------------------------ *)

let logq_eps = Rat.make 1 32

let rules_of q ~max_pmtds =
  let pmtds = Enum.pmtds ~max_pmtds q in
  (pmtds, Rule.generate q pmtds)

let combined_logt q rules logs =
  let dc = Degree.default_dc q.Cq.cq and ac = Degree.default_ac q in
  List.fold_left
    (fun acc r ->
      match Jointflow.logt r ~dc ~ac ~logq:Rat.zero ~logs with
      | Some t -> Rat.max acc (Rat.max Rat.zero t)
      | None -> acc)
    Rat.zero rules

(* prior-art baseline for k-reachability: S·T^{2/(k-1)} ≅ D², capped by
   BFS at T = D *)
let reach_baseline_logt k logs =
  let t = Rat.mul (Rat.make (k - 1) 2) (Rat.sub (Rat.of_int 2) logs) in
  Rat.min Rat.one (Rat.max Rat.zero t)

let pp_logs_curve ~title rows =
  Printf.printf "%-10s" "log_D S";
  List.iter (fun (x, _) -> Printf.printf "%8s" (Rat.to_string x)) rows;
  Printf.printf "\n%-10s" title;
  List.iter (fun (_, y) -> Printf.printf "%8s" (Rat.to_string y)) rows;
  print_newline ()

(* ------------------------------------------------------------------ *)
(* fig1                                                                 *)
(* ------------------------------------------------------------------ *)

let fig1 () =
  section "fig1" "Figure 1 — three PMTDs for the 3-reachability CQAP";
  let q = Cq.Library.k_path 3 in
  let of_l = Varset.of_list in
  let td =
    Td.create
      (Rtree.create ~parent:[| -1; 0 |])
      [| of_l [ 0; 2; 3 ]; of_l [ 0; 1; 2 ] |]
  in
  let single = Td.create (Rtree.create ~parent:[| -1 |]) [| Varset.full 4 |] in
  let entries =
    [
      ("left  (M = ∅)", Pmtd.create_exn q td ~materialized:[| false; false |]);
      ( "middle (M = {child})",
        Pmtd.create_exn q td ~materialized:[| false; true |] );
      ("right (M = {root})", Pmtd.create_exn q single ~materialized:[| true |]);
    ]
  in
  List.iter (fun (name, p) -> Format.printf "%-22s %a@." name Pmtd.pp p) entries;
  record "pmtds"
    (Json.List
       (List.map
          (fun (name, p) ->
            Json.Obj
              [
                ("name", Json.String (String.trim name));
                ("pmtd", Json.String (Format.asprintf "%a" Pmtd.pp p));
              ])
          entries));
  print_endline "paper: left = (T134, T123); middle = (T134, S13); right = (S14)"

(* ------------------------------------------------------------------ *)
(* fig2                                                                 *)
(* ------------------------------------------------------------------ *)

let fig2 () =
  section "fig2" "Figure 2 — all non-redundant, non-dominant PMTDs (3-reach)";
  let pmtds = Enum.pmtds (Cq.Library.k_path 3) in
  Printf.printf "enumerated: %d PMTDs (paper: 5)\n" (List.length pmtds);
  record "pmtd_count" (Json.Int (List.length pmtds));
  record "pmtds"
    (Json.List
       (List.map
          (fun p -> Json.String (Format.asprintf "%a" Pmtd.pp p))
          pmtds));
  List.iter (fun p -> Format.printf "  %a@." Pmtd.pp p) pmtds

(* ------------------------------------------------------------------ *)
(* tab1                                                                 *)
(* ------------------------------------------------------------------ *)

let tab1 () =
  section "tab1" "Table 1 — 2-phase disjunctive rules for 3-reachability";
  let q = Cq.Library.k_path 3 in
  let pmtds, rules = rules_of q ~max_pmtds:64 in
  Printf.printf
    "PMTDs: %d; raw view combinations: %d → subset-minimal rules: %d\n\n"
    (List.length pmtds)
    (List.fold_left (fun acc p -> acc * List.length (Pmtd.views p)) 1 pmtds)
    (List.length rules);
  record "pmtds" (Json.Int (List.length pmtds));
  record "rules" (Json.Int (List.length rules));
  let dc = Degree.default_dc q.Cq.cq and ac = Degree.default_ac q in
  let grid = Tradeoff.grid ~lo:Rat.zero ~hi:(Rat.of_int 2) ~steps:16 in
  (* LP-derived tradeoff exponents, per rule, with the simplex pivots the
     derivation cost *)
  let rule_rows =
    List.mapi
      (fun i r ->
        let pivots0 = Simplex.pivot_count () in
        let tradeoffs =
          Jointflow.rule_tradeoffs r ~dc ~ac ~logq:logq_eps ~logs_grid:grid
        in
        let pivots = Simplex.pivot_count () - pivots0 in
        Format.printf "ρ%d: %a@." (i + 1) Rule.pp r;
        List.iter (fun t -> Format.printf "      %a@." Tradeoff.pp t) tradeoffs;
        Json.Obj
          [
            ("rule", Json.String (Format.asprintf "%a" Rule.pp r));
            ("tradeoffs", Json.List (List.map json_tradeoff tradeoffs));
            ("simplex_pivots", Json.Int pivots);
          ])
      rules
  in
  record "rule_tradeoffs" (Json.List rule_rows);
  (* empirical twin: build the actual 3-reachability index on a synthetic
     Zipf graph and answer a request batch, so the artifact also carries
     measured (not just derived) numbers *)
  let edges = Graphs.zipf_both ~seed:401 ~vertices:300 ~edges:3_000 ~s:1.1 in
  let db = Db.create () in
  Db.add_pairs db "R" edges;
  let budget = 5_000 in
  let pivots0 = Simplex.pivot_count () in
  let engine, build_wall = timed (fun () -> Engine.build q pmtds ~db ~budget) in
  let build_pivots = Simplex.pivot_count () - pivots0 in
  let rng = Rng.create 7 in
  let q_a =
    Relation.of_list
      (Schema.of_list [ 0; 3 ])
      (List.init 200 (fun _ -> [| Rng.int rng 300; Rng.int rng 300 |]))
  in
  let (result, snap), online_wall =
    timed (fun () -> Cost.measure (fun () -> Engine.answer engine ~q_a))
  in
  Printf.printf
    "\nempirical (|E| = %d, budget %d): stored space %d tuples,\n\
    \  %d answers to %d requests in %d counted ops, %d simplex pivots\n"
    (List.length edges) budget (Engine.space engine)
    (Relation.cardinal result) (Relation.cardinal q_a) (Cost.total snap)
    build_pivots;
  record "empirical"
    (Json.Obj
       [
         ("edges", Json.Int (List.length edges));
         ("budget", Json.Int budget);
         ("simplex_pivots", Json.Int build_pivots);
         ("space", Json.Int (Engine.space engine));
         ( "per_pmtd_space",
           Json.List
             (List.map
                (fun (p, s) ->
                  Json.Obj
                    [
                      ("pmtd", Json.String (Format.asprintf "%a" Pmtd.pp p));
                      ("space", Json.Int s);
                    ])
                (Engine.per_pmtd_space engine)) );
         ("build_wall_s", Json.Float build_wall);
         ("requests", Json.Int (Relation.cardinal q_a));
         ("answers", Json.Int (Relation.cardinal result));
         ("online_cost", json_snapshot snap);
         ("online_wall_s", Json.Float online_wall);
       ]);
  print_endline "\npaper Table 1:";
  print_endline "  ρ1: S·T² ≅ D²·Q²";
  print_endline "  ρ2: S²·T³ ≅ D⁴·Q³ ; T ≅ D·Q";
  print_endline "  ρ3: S²·T³ ≅ D⁴·Q³ ; T ≅ D·Q";
  print_endline "  ρ4: S·T ≅ D²·Q ; S⁴·T ≅ D⁶·Q ; T ≅ D·Q"

(* ------------------------------------------------------------------ *)
(* fig3a / fig3b                                                        *)
(* ------------------------------------------------------------------ *)

let fig3 ~k ~steps () =
  let id = if k = 3 then "fig3a" else "fig3b" in
  section id
    (Printf.sprintf
       "Figure 3%s — combined %d-reachability tradeoff vs prior art"
       (if k = 3 then "a" else "b")
       k);
  let q = Cq.Library.k_path k in
  let _, rules = rules_of q ~max_pmtds:128 in
  Printf.printf "rules analyzed: %d (|Q_A| = 1)\n\n" (List.length rules);
  let grid = Tradeoff.grid ~lo:Rat.one ~hi:(Rat.of_int 2) ~steps in
  let ours = List.map (fun logs -> (logs, combined_logt q rules logs)) grid in
  let baseline = List.map (fun logs -> (logs, reach_baseline_logt k logs)) grid in
  pp_logs_curve ~title:"baseline" baseline;
  pp_logs_curve ~title:"ours" ours;
  let improved =
    List.for_all2 (fun (_, o) (_, b) -> Rat.compare o b <= 0) ours baseline
  in
  let strictly =
    List.exists2 (fun (_, o) (_, b) -> Rat.compare o b < 0) ours baseline
  in
  record "k" (Json.Int k);
  record "rules" (Json.Int (List.length rules));
  record "baseline" (json_logs_curve baseline);
  record "ours" (json_logs_curve ours);
  record "improved_everywhere" (Json.Bool improved);
  record "strictly_better_somewhere" (Json.Bool strictly);
  Printf.printf
    "\nours ≤ baseline everywhere: %b; strictly better somewhere: %b\n"
    improved strictly;
  if k = 4 then
    print_endline
      "paper: for 4-reachability the new tradeoff beats the conjectured\n\
       optimum S·T^{2/3} ≅ |E|² in *every* regime of space"
  else
    print_endline
      "paper: for 3-reachability the tradeoff improves on S·T ≅ |E|² for\n\
       a significant part of the spectrum"

(* ------------------------------------------------------------------ *)
(* fig4                                                                 *)
(* ------------------------------------------------------------------ *)

let fig4 () =
  section "fig4" "Figure 4 / Appendix A — Online Yannakakis worked example";
  (* φ(x1 x2 x3 x4 x7 x8 | x1 x2) with the 6-node PMTD of Figure 4:
     T12 ← T13 ← {T345 ← S45; S37 ← S78}; variables x1..x8 ↦ 0..7 *)
  let of_l = Varset.of_list in
  (* seven variables: x1 x2 x3 x4 x5 x7 x8 ↦ ids 0..6 *)
  let var_names = [| "x1"; "x2"; "x3"; "x4"; "x5"; "x7"; "x8" |] in
  let atoms =
    [
      { Cq.rel = "A"; vars = [ 0; 1 ] };
      { Cq.rel = "B"; vars = [ 0; 2 ] };
      { Cq.rel = "C"; vars = [ 2; 3; 4 ] };
      { Cq.rel = "D"; vars = [ 3; 4 ] };
      { Cq.rel = "E"; vars = [ 2; 5 ] };
      { Cq.rel = "F"; vars = [ 5; 6 ] };
    ]
  in
  let head = of_l [ 0; 1; 2; 3; 5; 6 ] in
  let cq = Cq.create ~var_names ~head atoms in
  let cqap = Cq.with_access cq (of_l [ 0; 1 ]) in
  let td =
    Td.create
      (Rtree.create ~parent:[| -1; 0; 1; 2; 1; 4 |])
      [|
        of_l [ 0; 1 ];
        of_l [ 0; 2 ];
        of_l [ 2; 3; 4 ];
        of_l [ 3; 4 ];
        of_l [ 2; 5 ];
        of_l [ 5; 6 ];
      |]
  in
  let pmtd =
    Pmtd.create_exn cqap td
      ~materialized:[| false; false; false; true; true; true |]
  in
  Format.printf "PMTD: %a@." Pmtd.pp pmtd;
  let rng = Rng.create 77 in
  let dom = 30 in
  let db = Db.create () in
  let pairs n = List.init n (fun _ -> [| Rng.int rng dom; Rng.int rng dom |]) in
  let triples n =
    List.init n (fun _ ->
        [| Rng.int rng dom; Rng.int rng dom; Rng.int rng dom |])
  in
  Db.add db "A" (pairs 300);
  Db.add db "B" (pairs 300);
  Db.add db "C" (triples 300);
  Db.add db "D" (pairs 300);
  Db.add db "E" (pairs 300);
  Db.add db "F" (pairs 300);
  let full = Db.eval db (Cq.create ~var_names ~head:(Varset.full 7) atoms) in
  let view node =
    Cost.with_counting false (fun () ->
        Relation.project full (Varset.to_list (Pmtd.view pmtd node).Pmtd.vars))
  in
  let pre = Online_yannakakis.preprocess pmtd ~s_views:view in
  Printf.printf "S-view space: %d tuples\n" (Online_yannakakis.space pre);
  let q_a =
    Relation.of_list
      (Schema.of_list [ 0; 1 ])
      (List.init 20 (fun _ -> [| Rng.int rng dom; Rng.int rng dom |]))
  in
  let (result, snap), online_wall =
    timed (fun () ->
        Cost.measure (fun () -> Online_yannakakis.answer pre ~t_views:view ~q_a))
  in
  let expected = Db.eval_access db cqap ~q_a in
  record "s_view_space" (Json.Int (Online_yannakakis.space pre));
  record "requests" (Json.Int (Relation.cardinal q_a));
  record "answers" (Json.Int (Relation.cardinal result));
  record "online_cost" (json_snapshot snap);
  record "online_wall_s" (Json.Float online_wall);
  record "matches_brute_force"
    (Json.Bool (Relation.equal result expected));
  Printf.printf
    "answered |Q_A| = %d in %d counted ops; |ψ| = %d (matches brute force: %b)\n"
    (Relation.cardinal q_a) (Cost.total snap) (Relation.cardinal result)
    (Relation.equal result expected)

(* ------------------------------------------------------------------ *)
(* fig5                                                                 *)
(* ------------------------------------------------------------------ *)

let fig5 () =
  section "fig5" "Figure 5 / Appendix F — Boolean hierarchical CQAP";
  let q = Cq.Library.hierarchical_binary in
  Format.printf "query: %a@." Cq.pp_cqap q;
  Printf.printf "hierarchical: %b\n\n" (Cq.is_hierarchical q.Cq.cq);
  let pmtds, rules = rules_of q ~max_pmtds:64 in
  Printf.printf "PMTDs (paper: 5): %d\n" (List.length pmtds);
  List.iter (fun p -> Format.printf "  %a@." Pmtd.pp p) pmtds;
  Printf.printf "\nsubset-minimal rules: %d\n" (List.length rules);
  record "hierarchical" (Json.Bool (Cq.is_hierarchical q.Cq.cq));
  record "pmtds" (Json.Int (List.length pmtds));
  record "rules" (Json.Int (List.length rules));
  let dc = Degree.default_dc q.Cq.cq and ac = Degree.default_ac q in
  let grid = Tradeoff.grid ~lo:Rat.zero ~hi:(Rat.of_int 2) ~steps:4 in
  List.iter
    (fun r ->
      Format.printf "  %a@." Rule.pp r;
      List.iter
        (fun t -> Format.printf "      %a  (LP certificate)@." Tradeoff.pp t)
        (Jointflow.rule_tradeoffs r ~dc ~ac ~logq:logq_eps ~logs_grid:grid))
    rules;
  print_endline
    "\n(at 7 variables the LP runs with lazily generated polymatroid cuts\n\
    \ and early stopping; its certificates are valid upper bounds but can\n\
    \ be loose — the machine-checked proof sequences below give the tight\n\
    \ tradeoffs of Appendix F)";
  print_endline "\nmachine-checked paper proofs (lib/core/paper_proofs.ml):";
  record "proof_tradeoffs"
    (Json.List
       (List.map
          (fun name ->
            let e = Paper_proofs.find name in
            Format.printf "  %-28s %a@." e.Paper_proofs.name Tradeoff.pp
              e.Paper_proofs.tradeoff;
            Json.Obj
              [
                ("name", Json.String e.Paper_proofs.name);
                ("tradeoff", json_tradeoff e.Paper_proofs.tradeoff);
              ])
          [ "F improved (hierarchical)"; "F rule 2 (hierarchical)" ]));
  print_endline "\npaper:";
  print_endline "  Theorem F.4 baseline (w = 4):    S·T³ ≅ D⁴";
  print_endline "  framework (first derivation):    S·T³ ≅ D⁴·Q³";
  print_endline "  improved (bucketize bound vars): S·T⁴ ≅ D⁴·Q⁴, others S·T ≅ D²·Q"

(* ------------------------------------------------------------------ *)
(* ex62 / ex63                                                          *)
(* ------------------------------------------------------------------ *)

let ex62 () =
  section "ex62" "Example 6.2 — k-Set Disjointness via fractional edge covers";
  record "tradeoffs"
    (Json.List
       (List.map
          (fun k ->
            let q = Cq.Library.k_set_disjointness k in
            let t = Cover.theorem_6_1_auto q in
            Format.printf "k = %d:  %a   (paper: S·T^%d ≅ Q^%d·D^%d)@." k
              Tradeoff.pp (Tradeoff.scaled t) k k k;
            Json.Obj
              [ ("k", Json.Int k); ("tradeoff", json_tradeoff (Tradeoff.scaled t)) ])
          [ 2; 3; 4 ]))

let ex63 () =
  section "ex63" "Example 6.3 — 4-reachability via a tree decomposition";
  let q = Cq.Library.k_path 4 in
  let of_l = Varset.of_list in
  let e i j = of_l [ i; j ] in
  let bags =
    [
      {
        Cover.bag = of_l [ 0; 1; 3; 4 ];
        a_t = of_l [ 0; 4 ];
        u = [ (e 0 1, Rat.one); (e 3 4, Rat.one) ];
      };
      {
        Cover.bag = of_l [ 1; 2; 3 ];
        a_t = of_l [ 1; 3 ];
        u = [ (e 1 2, Rat.one); (e 2 3, Rat.one) ];
      };
    ]
  in
  let t = Cover.path_tradeoff q bags in
  record "tradeoff" (json_tradeoff t);
  Format.printf
    "path {x1,x2,x4,x5} → {x2,x3,x4}:  %a   (paper: S^{3/2}·T ≅ Q·D³)@."
    Tradeoff.pp t

(* ------------------------------------------------------------------ *)
(* empirical sweeps                                                     *)
(* ------------------------------------------------------------------ *)

let slope points =
  let pts =
    List.filter_map
      (fun (x, y) ->
        if x > 0 && y > 0 then
          Some (Float.log (float_of_int x), Float.log (float_of_int y))
        else None)
      points
  in
  match pts with
  | [] | [ _ ] -> nan
  | _ ->
      let n = float_of_int (List.length pts) in
      let sx = List.fold_left (fun a (x, _) -> a +. x) 0.0 pts in
      let sy = List.fold_left (fun a (_, y) -> a +. y) 0.0 pts in
      let sxx = List.fold_left (fun a (x, _) -> a +. (x *. x)) 0.0 pts in
      let sxy = List.fold_left (fun a (x, y) -> a +. (x *. y)) 0.0 pts in
      ((n *. sxy) -. (sx *. sy)) /. ((n *. sxx) -. (sx *. sx))

let emp_setdisj () =
  section "emp-setdisj"
    "Empirical — 2-/3-Set Disjointness: worst-case probes vs stored space";
  let memberships =
    Sets.zipf_sizes ~seed:101 ~universe:3000 ~sets:500 ~memberships:25_000
      ~s:1.15
  in
  Printf.printf "N = %d membership pairs\n" (List.length memberships);
  List.iter
    (fun k ->
      Printf.printf "\nk = %d (paper predicts worst T ∝ S^{-1/%d}):\n" k k;
      Printf.printf "%12s %12s %10s %10s\n" "budget" "space" "avg ops"
        "worst ops";
      let rng0 = Rng.create 55 in
      (* Zipf-rank queries: heavier sets are asked about more often, the
         regime where heavy-heavy materialization matters *)
      let sample = Rng.zipf_sampler rng0 ~n:500 ~s:1.1 in
      let queries =
        List.init 400 (fun _ -> Array.init k (fun _ -> sample ()))
      in
      let points = ref [] and rows = ref [] in
      List.iter
        (fun budget ->
          let t, build_wall =
            timed (fun () -> Stt_apps.Setdisj.build ~k ~memberships ~budget)
          in
          let total = ref 0 and worst = ref 0 in
          let (), wall =
            timed (fun () ->
                List.iter
                  (fun qy ->
                    let _, snap =
                      Cost.measure (fun () -> Stt_apps.Setdisj.disjoint t qy)
                    in
                    let c = Cost.total snap in
                    total := !total + c;
                    worst := max !worst c)
                  queries)
          in
          points := (Stt_apps.Setdisj.space t, !worst) :: !points;
          rows :=
            Json.Obj
              [
                ("budget", Json.Int budget);
                ("space", Json.Int (Stt_apps.Setdisj.space t));
                ("avg_ops", Json.Int (!total / List.length queries));
                ("worst_ops", Json.Int !worst);
                ("build_wall_s", Json.Float build_wall);
                ("query_wall_s", Json.Float wall);
              ]
            :: !rows;
          Printf.printf "%12d %12d %10d %10d\n" budget
            (Stt_apps.Setdisj.space t)
            (!total / List.length queries)
            !worst)
        [ 0; 100; 1_000; 10_000; 100_000; 1_000_000 ];
      let informative =
        (* drop saturated endpoints: zero space or O(1) answers *)
        List.filter (fun (s, w) -> s > 0 && w > 2) !points
      in
      Printf.printf
        "measured log-log slope (worst vs space): %+.2f (theory %+.2f)\n"
        (slope informative)
        (-1.0 /. float_of_int k);
      record
        (Printf.sprintf "k%d" k)
        (Json.Obj
           [
             ("rows", Json.List (List.rev !rows));
             ("slope", Json.Float (slope informative));
             ("theory_slope", Json.Float (-1.0 /. float_of_int k));
           ]))
    [ 2; 3 ]

let emp_reach () =
  section "emp-reach"
    "Empirical — k-reachability: framework vs baseline at equal space";
  let vertices = 800 in
  let edges = Graphs.zipf_both ~seed:103 ~vertices ~edges:8_000 ~s:1.1 in
  Printf.printf "|E| = %d\n" (List.length edges);
  let rng0 = Rng.create 66 in
  let queries =
    List.init 300 (fun _ -> (Rng.int rng0 vertices, Rng.int rng0 vertices))
  in
  let rows = ref [] in
  let run name space query =
    let total = ref 0 and worst = ref 0 in
    let (), wall =
      timed (fun () ->
          List.iter
            (fun (u, v) ->
              let _, snap = Cost.measure (fun () -> ignore (query u v)) in
              let c = Cost.total snap in
              total := !total + c;
              worst := max !worst c)
            queries)
    in
    Printf.printf "  %-24s space=%8d avg=%7d worst=%8d\n" name space
      (!total / List.length queries)
      !worst;
    rows :=
      Json.Obj
        [
          ("variant", Json.String name);
          ("space", Json.Int space);
          ("avg_ops", Json.Int (!total / List.length queries));
          ("worst_ops", Json.Int !worst);
          ("query_wall_s", Json.Float wall);
        ]
      :: !rows;
    (space, !worst)
  in
  List.iter
    (fun k ->
      Printf.printf "\nk = %d:\n" k;
      rows := [];
      let bfs = Stt_apps.Reach.Bfs.build edges in
      ignore (run "BFS (S=0)" 0 (fun u v -> Stt_apps.Reach.Bfs.query bfs ~k u v));
      let fw_points = ref [] in
      List.iter
        (fun budget ->
          let b = Stt_apps.Reach.Baseline.build ~k edges ~budget in
          ignore
            (run
               (Printf.sprintf "baseline @%d" budget)
               (Stt_apps.Reach.Baseline.space b)
               (fun u v -> Stt_apps.Reach.Baseline.query b u v));
          let f = Stt_apps.Reach.Framework.build ~k edges ~budget in
          fw_points :=
            run
              (Printf.sprintf "framework @%d" budget)
              (Stt_apps.Reach.Framework.space f)
              (fun u v -> Stt_apps.Reach.Framework.query f u v)
            :: !fw_points)
        [ 2_000; 50_000; 1_000_000 ];
      if k = 2 then
        Printf.printf
          "  framework log-log slope (worst vs space): %+.2f (theory -1/2)\n"
          (slope !fw_points);
      record
        (Printf.sprintf "k%d" k)
        (Json.Obj
           (("rows", Json.List (List.rev !rows))
           ::
           (if k = 2 then
              [
                ("framework_slope", Json.Float (slope !fw_points));
                ("theory_slope", Json.Float (-0.5));
              ]
            else []))))
    [ 2; 3 ]

let emp_hier () =
  section "emp-hier"
    "Empirical — hierarchical CQAP: adapted baseline vs framework";
  let inst = Stt_apps.Hierarchical.generate ~seed:107 ~posts:600 ~size:8_000 in
  let rng0 = Rng.create 99 in
  let zdom = 150 in
  let queries =
    List.init 300 (fun _ -> Array.init 4 (fun _ -> Rng.int rng0 zdom))
  in
  let rows = ref [] in
  let run name space query =
    let total = ref 0 and worst = ref 0 in
    let (), wall =
      timed (fun () ->
          List.iter
            (fun qy ->
              let _, snap = Cost.measure (fun () -> ignore (query qy)) in
              total := !total + Cost.total snap;
              worst := max !worst (Cost.total snap))
            queries)
    in
    Printf.printf "  %-28s space=%8d avg=%6d worst=%7d\n" name space
      (!total / List.length queries)
      !worst;
    rows :=
      Json.Obj
        [
          ("variant", Json.String name);
          ("space", Json.Int space);
          ("avg_ops", Json.Int (!total / List.length queries));
          ("worst_ops", Json.Int !worst);
          ("query_wall_s", Json.Float wall);
        ]
      :: !rows
  in
  List.iter
    (fun eps ->
      let t = Stt_apps.Hierarchical.Adapted.build inst ~epsilon:eps in
      run
        (Printf.sprintf "adapted (ε = %.2f)" eps)
        (Stt_apps.Hierarchical.Adapted.space t)
        (Stt_apps.Hierarchical.Adapted.query t))
    [ 0.0; 0.15; 0.3; 0.45 ];
  List.iter
    (fun budget ->
      let t = Stt_apps.Hierarchical.Framework.build inst ~budget in
      run
        (Printf.sprintf "framework @%d" budget)
        (Stt_apps.Hierarchical.Framework.space t)
        (Stt_apps.Hierarchical.Framework.query t))
    [ 2_000; 200_000 ];
  record "rows" (Json.List (List.rev !rows))

let emp_square () =
  section "emp-square" "Empirical — square query (Example E.5) budget sweep";
  let edges = Graphs.cycle_rich ~seed:109 ~vertices:400 ~edges:4_000 in
  Printf.printf "|E| = %d\n" (List.length edges);
  let rng0 = Rng.create 31 in
  let queries = List.init 200 (fun _ -> (Rng.int rng0 400, Rng.int rng0 400)) in
  Printf.printf "%12s %10s %10s %10s\n" "budget" "space" "avg" "worst";
  record "rows"
    (Json.List
       (List.map
          (fun budget ->
            let t, build_wall =
              timed (fun () -> Stt_apps.Patterns.Square.build edges ~budget)
            in
            let total = ref 0 and worst = ref 0 in
            let (), wall =
              timed (fun () ->
                  List.iter
                    (fun (u, w) ->
                      let _, snap =
                        Cost.measure (fun () ->
                            ignore (Stt_apps.Patterns.Square.query t u w))
                      in
                      total := !total + Cost.total snap;
                      worst := max !worst (Cost.total snap))
                    queries)
            in
            Printf.printf "%12d %10d %10d %10d\n" budget
              (Stt_apps.Patterns.Square.space t)
              (!total / List.length queries)
              !worst;
            Json.Obj
              [
                ("budget", Json.Int budget);
                ("space", Json.Int (Stt_apps.Patterns.Square.space t));
                ("avg_ops", Json.Int (!total / List.length queries));
                ("worst_ops", Json.Int !worst);
                ("build_wall_s", Json.Float build_wall);
                ("query_wall_s", Json.Float wall);
              ])
          [ 10; 1_000; 20_000; 500_000 ]))

(* ------------------------------------------------------------------ *)
(* emp-serve                                                            *)
(* ------------------------------------------------------------------ *)

let chunks k xs =
  let rec take n acc = function
    | x :: tl when n > 0 -> take (n - 1) (x :: acc) tl
    | rest -> (List.rev acc, rest)
  in
  let rec go = function
    | [] -> []
    | xs ->
        let b, rest = take k [] xs in
        b :: go rest
  in
  go xs

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else sorted.(min (n - 1) (int_of_float (ceil (p *. float_of_int n)) - 1))

let emp_serve () =
  section "emp-serve"
    "Empirical — serving: parallel build + batched online answering";
  let vertices = 400 in
  let edges = Graphs.zipf_both ~seed:113 ~vertices ~edges:4_000 ~s:1.1 in
  let q = Cq.Library.k_path 2 in
  let budget = 2_000 in
  let db = Db.create () in
  Db.add_pairs db "R" edges;
  Printf.printf "|E| = %d, budget %d (host cores: %d)\n" (List.length edges)
    budget (Domain.recommended_domain_count ());
  let saved_jobs = Pool.jobs () in
  (* build under 1 and 4 domains: outputs must be identical; both walls
     go into the artifact (speedup only materializes on multicore hosts) *)
  let build jobs =
    Pool.set_jobs jobs;
    timed (fun () -> Engine.build_auto ~max_pmtds:128 q ~db ~budget)
  in
  let e1, build_wall_1 = build 1 in
  let e4, build_wall_4 = build 4 in
  Pool.set_jobs saved_jobs;
  let identical_builds =
    Engine.space e1 = Engine.space e4
    && List.for_all2
         (fun (_, a) (_, b) -> a = b)
         (Engine.per_pmtd_space e1) (Engine.per_pmtd_space e4)
  in
  Printf.printf
    "build: %.4fs @1 domain, %.4fs @4 domains — identical outputs: %b\n"
    build_wall_1 build_wall_4 identical_builds;
  let engine = e4 in
  (* hot-key Zipf request stream over the access schema *)
  let requests = 8_000 in
  let skew = 1.5 in
  let mk_reqs () =
    let rng = Rng.create 117 in
    let sample = Rng.zipf_sampler rng ~n:vertices ~s:skew in
    let acc_schema = Engine.access_schema engine in
    let arity = Schema.arity acc_schema in
    List.init requests (fun _ ->
        Relation.singleton acc_schema (Array.init arity (fun _ -> sample ())))
  in
  let serve batch =
    let reqs = mk_reqs () in
    let walls = ref [] and total_ops = ref 0 and hits = ref 0 in
    let answers = ref [] in
    let (), wall =
      timed (fun () ->
          List.iter
            (fun group ->
              let out, w = timed (fun () -> Engine.answer_batch engine group) in
              walls := w :: !walls;
              List.iter
                (fun (r, c) ->
                  if not (Relation.is_empty r) then incr hits;
                  total_ops := !total_ops + Cost.total c;
                  answers := r :: !answers)
                out)
            (chunks batch reqs))
    in
    let sorted = Array.of_list !walls in
    Array.sort compare sorted;
    let throughput = float_of_int requests /. wall in
    Printf.printf
      "batch=%-4d %9.0f answers/sec  %d hits  avg %3d ops  batch wall p50 \
       %.5fs p95 %.5fs max %.5fs\n"
      batch throughput !hits (!total_ops / requests) (percentile sorted 0.50)
      (percentile sorted 0.95) (percentile sorted 1.0);
    let row =
      Json.Obj
        [
          ("batch", Json.Int batch);
          ("requests", Json.Int requests);
          ("hits", Json.Int !hits);
          ("total_ops", Json.Int !total_ops);
          ("wall_s", Json.Float wall);
          ("answers_per_sec", Json.Float throughput);
          ("batch_wall_p50_s", Json.Float (percentile sorted 0.50));
          ("batch_wall_p95_s", Json.Float (percentile sorted 0.95));
          ("batch_wall_max_s", Json.Float (percentile sorted 1.0));
        ]
    in
    (row, throughput, List.rev !answers)
  in
  let row1, tput1, ans1 = serve 1 in
  let row64, tput64, ans64 = serve 64 in
  let identical_answers = identical_relations ans1 ans64 in
  let speedup = tput64 /. tput1 in
  Printf.printf
    "batched (64) vs per-tuple (1): %.2fx throughput — identical answers: %b\n"
    speedup identical_answers;
  (* snapshot round trip: pay the build once, serve from the file —
     loading must cost a fraction of the cold build and the loaded
     engine must answer identically *)
  let snap_path = Filename.temp_file "stt_emp_serve" ".snap" in
  let snapshot_bytes, save_wall =
    timed (fun () ->
        match Engine.save engine snap_path with
        | Ok bytes -> bytes
        | Error e -> failwith (Stt_store.Store.error_to_string e))
  in
  let loaded, load_wall =
    timed (fun () ->
        match Engine.load snap_path with
        | Ok l -> l
        | Error e -> failwith (Stt_store.Store.error_to_string e))
  in
  Sys.remove snap_path;
  let identical_loaded =
    Engine.space loaded = Engine.space engine
    &&
    let reqs = List.filteri (fun i _ -> i < 256) (mk_reqs ()) in
    List.for_all2
      (fun (r, c) (r', c') -> Relation.equal r r' && c = c')
      (Engine.answer_batch engine reqs)
      (Engine.answer_batch loaded reqs)
  in
  Printf.printf
    "snapshot: %d bytes, saved %.4fs, loaded %.4fs (cold build %.4fs) — \
     identical answers and op counts: %b\n"
    snapshot_bytes save_wall load_wall build_wall_1 identical_loaded;
  record "edges" (Json.Int (List.length edges));
  record "budget" (Json.Int budget);
  record "space" (Json.Int (Engine.space engine));
  record "host_cores" (Json.Int (Domain.recommended_domain_count ()));
  record "build_wall_1_s" (Json.Float build_wall_1);
  record "build_wall_4_s" (Json.Float build_wall_4);
  record "build_speedup" (Json.Float (build_wall_1 /. build_wall_4));
  record "identical_builds" (Json.Bool identical_builds);
  record "skew" (Json.Float skew);
  record "single" row1;
  record "batched" row64;
  record "batched_speedup" (Json.Float speedup);
  record "identical_answers" (Json.Bool identical_answers);
  record "snapshot_bytes" (Json.Int snapshot_bytes);
  record "snapshot_save_wall_s" (Json.Float save_wall);
  record "snapshot_load_wall_s" (Json.Float load_wall);
  record "snapshot_load_speedup" (Json.Float (build_wall_1 /. load_wall));
  record "identical_loaded" (Json.Bool identical_loaded)

(* ------------------------------------------------------------------ *)
(* emp-cache                                                            *)
(* ------------------------------------------------------------------ *)

let emp_cache () =
  section "emp-cache"
    "Empirical — workload-adaptive answer cache across budgets and skews";
  (* 3-reach at a tight space budget keeps the online path expensive, so
     a cache hit (one probe + a decode) has real work to displace *)
  let vertices = 400 in
  let edges = Graphs.zipf_both ~seed:131 ~vertices ~edges:4_000 ~s:1.1 in
  let q = Cq.Library.k_path 3 in
  let budget = 1_000 in
  let db = Db.create () in
  Db.add_pairs db "R" edges;
  let engine, build_wall =
    timed (fun () -> Engine.build_auto ~max_pmtds:128 q ~db ~budget)
  in
  Printf.printf "|E| = %d, budget %d, space %d (built in %.3fs)\n"
    (List.length edges) budget (Engine.space engine) build_wall;
  let requests = 4_000 in
  let batch = 16 in
  let acc_schema = Engine.access_schema engine in
  let arity = Schema.arity acc_schema in
  (* same seed for every run: a budget sweep serves the same stream *)
  let mk_reqs ~skew =
    let rng = Rng.create 117 in
    let sample =
      if skew = 0.0 then fun () -> Rng.int rng vertices
      else Rng.zipf_sampler rng ~n:vertices ~s:skew
    in
    List.init requests (fun _ ->
        Relation.singleton acc_schema (Array.init arity (fun _ -> sample ())))
  in
  let serve ~label ~skew ~cache_budget =
    Engine.attach_cache engine ~budget:cache_budget (* 0 detaches *);
    let reqs = mk_reqs ~skew in
    let walls = ref [] and total_ops = ref 0 in
    let answers = ref [] in
    let (), wall =
      timed (fun () ->
          List.iter
            (fun group ->
              let out, w = timed (fun () -> Engine.answer_batch engine group) in
              walls := w :: !walls;
              List.iter
                (fun (r, c) ->
                  total_ops := !total_ops + Cost.total c;
                  answers := r :: !answers)
                out)
            (chunks batch reqs))
    in
    let sorted = Array.of_list !walls in
    Array.sort compare sorted;
    let throughput = float_of_int requests /. wall in
    let hit_rate, used, entries =
      match Engine.cache_stats engine with
      | None -> (0.0, 0, 0)
      | Some s ->
          let open Stt_cache.Cache in
          let lookups = s.hits + s.misses in
          ( (if lookups = 0 then 0.0
             else float_of_int s.hits /. float_of_int lookups),
            s.used,
            s.entries )
    in
    Printf.printf
      "%-12s cache=%-6d %9.0f answers/sec  avg %4d ops  hit rate %.3f  \
       occupancy %d tuples (%d entries)  batch wall p50 %.5fs p99 %.5fs\n"
      label cache_budget throughput (!total_ops / requests) hit_rate used
      entries (percentile sorted 0.50) (percentile sorted 0.99);
    let row =
      Json.Obj
        [
          ("cache_budget", Json.Int cache_budget);
          ("requests", Json.Int requests);
          ("total_ops", Json.Int !total_ops);
          ("wall_s", Json.Float wall);
          ("answers_per_sec", Json.Float throughput);
          ("batch_wall_p50_s", Json.Float (percentile sorted 0.50));
          ("batch_wall_p99_s", Json.Float (percentile sorted 0.99));
          ("hit_rate", Json.Float hit_rate);
          ("cache_used", Json.Int used);
          ("cache_entries", Json.Int entries);
        ]
    in
    (row, throughput, !total_ops, List.rev !answers)
  in
  let skew = 1.5 in
  let row_z0, t_z0, ops_z0, ans_z0 =
    serve ~label:"zipf" ~skew ~cache_budget:0
  in
  let row_zs, _, _, ans_zs = serve ~label:"zipf" ~skew ~cache_budget:500 in
  let row_zl, t_zl, ops_zl, ans_zl =
    serve ~label:"zipf" ~skew ~cache_budget:20_000
  in
  let row_u0, t_u0, _, ans_u0 =
    serve ~label:"uniform" ~skew:0.0 ~cache_budget:0
  in
  let row_ul, t_ul, _, ans_ul =
    serve ~label:"uniform" ~skew:0.0 ~cache_budget:20_000
  in
  Engine.attach_cache engine ~budget:0;
  let identical_answers =
    identical_relations ans_z0 ans_zs
    && identical_relations ans_z0 ans_zl
    && identical_relations ans_u0 ans_ul
  in
  let skew_speedup = t_zl /. t_z0 in
  (* op counts are machine-independent: the deterministic twin of the
     wall-clock speedup, for noise-free regression gating *)
  let skew_ops_ratio = ops_ratio ~slow:ops_z0 ~fast:ops_zl in
  let uniform_ratio = t_ul /. t_u0 in
  Printf.printf
    "zipf(%.1f): cached (20000) vs uncached: %.2fx throughput, %.2fx fewer \
     ops — identical answers: %b\n"
    skew skew_speedup skew_ops_ratio identical_answers;
  Printf.printf
    "uniform: cached vs uncached: %.2fx throughput (flat is the goal — \
     admission keeps cold traffic from churning the cache)\n"
    uniform_ratio;
  record "edges" (Json.Int (List.length edges));
  record "budget" (Json.Int budget);
  record "space" (Json.Int (Engine.space engine));
  record "build_wall_s" (Json.Float build_wall);
  record "requests" (Json.Int requests);
  record "batch" (Json.Int batch);
  record "zipf_skew" (Json.Float skew);
  record "zipf_uncached" row_z0;
  record "zipf_small" row_zs;
  record "zipf_large" row_zl;
  record "uniform_uncached" row_u0;
  record "uniform_large" row_ul;
  record "identical_answers" (Json.Bool identical_answers);
  record "skew_speedup" (Json.Float skew_speedup);
  record "skew_ops_ratio" (Json.Float skew_ops_ratio);
  record "uniform_ratio" (Json.Float uniform_ratio)

(* ------------------------------------------------------------------ *)
(* emp-churn                                                            *)
(* ------------------------------------------------------------------ *)

let emp_churn () =
  section "emp-churn"
    "Empirical — incremental maintenance vs from-scratch rebuilds under churn";
  (* same fixture as emp-cache: 3-reach over the 4k-edge Zipf graph at a
     tight space budget, so both deltas and rebuilds have real work *)
  let vertices = 400 and n_edges = 4_000 in
  let q = Cq.Library.k_path 3 in
  let budget = 1_000 in
  let seed = 131 in
  let edges = Graphs.zipf_both ~seed ~vertices ~edges:n_edges ~s:1.1 in
  let db = Db.create () in
  Db.add_pairs db "R" edges;
  let engine, build_wall =
    timed (fun () -> Engine.build_auto ~max_pmtds:128 q ~db ~budget)
  in
  let acc_schema = Engine.access_schema engine in
  let arity = Schema.arity acc_schema in
  Printf.printf "|E| = %d, budget %d, space %d (built in %.3fs)\n"
    (List.length edges) budget (Engine.space engine) build_wall;
  (* the shared churn stream: ~30%% inserts / ~15%% deletes / ~55%%
     queries, Zipf-skewed onto the hot keys *)
  let n_ops = 400 in
  let ops =
    Scenario.churn_ops ~seed ~vertices ~edges:n_edges ~ops:n_ops ~arity
  in
  (* live mirror of the edge set, so the cold rebuild at the end sees
     exactly the post-churn graph *)
  let live = Hashtbl.create (2 * n_edges) in
  List.iter (fun e -> Hashtbl.replace live e ()) edges;
  let delta_ops = ref 0 and n_deltas = ref 0 and applied = ref 0 in
  let first_delta_ops = ref 0 in
  let delta_walls = ref [] in
  let query_ops = ref 0 and n_queries = ref 0 in
  let (), churn_wall =
    timed (fun () ->
        List.iter
          (fun op ->
            match op with
            | Scenario.Insert (u, v) | Scenario.Delete (u, v) ->
                let add =
                  match op with Scenario.Insert _ -> true | _ -> false
                in
                let (eff, cost), w =
                  timed (fun () ->
                      if add then Engine.insert engine "R" [| u; v |]
                      else Engine.delete engine "R" [| u; v |])
                in
                if add then Hashtbl.replace live (u, v) ()
                else Hashtbl.remove live (u, v);
                if eff then incr applied;
                incr n_deltas;
                (* the first delta also pays the one-time thaw *)
                if !n_deltas = 1 then first_delta_ops := Cost.total cost;
                delta_ops := !delta_ops + Cost.total cost;
                delta_walls := w :: !delta_walls
            | Scenario.Query t ->
                let q_a = Relation.singleton acc_schema t in
                let _, c = Cost.measure (fun () -> Engine.answer engine ~q_a) in
                query_ops := !query_ops + Cost.total c;
                incr n_queries)
          ops)
  in
  (* the alternative the maintenance path displaces: a from-scratch
     build of the post-churn graph (op-counted once; a rebuild-per-delta
     baseline would pay this for every one of the deltas) *)
  let final_db = Db.create () in
  Db.add_pairs final_db "R" (Hashtbl.fold (fun e () acc -> e :: acc) live []);
  let (rebuilt, rebuild_cost), rebuild_wall =
    timed (fun () ->
        Cost.scoped (fun () ->
            Engine.build_auto ~counted:true ~max_pmtds:128 q ~db:final_db
              ~budget))
  in
  let rebuild_ops = Cost.total rebuild_cost in
  (* the maintained engine must be observationally the rebuild *)
  let reqs =
    let rng = Rng.create 117 in
    let sample = Rng.zipf_sampler rng ~n:vertices ~s:1.5 in
    List.init 256 (fun _ ->
        Relation.singleton acc_schema (Array.init arity (fun _ -> sample ())))
  in
  let identical_answers =
    List.for_all2
      (fun (r, _) (r', _) -> Relation.equal r r')
      (Engine.answer_batch engine reqs)
      (Engine.answer_batch rebuilt reqs)
  in
  let avg_delta_ops =
    float_of_int !delta_ops /. float_of_int (max 1 !n_deltas)
  in
  let delta_rebuild_ratio = float_of_int rebuild_ops /. avg_delta_ops in
  let sorted_walls = Array.of_list !delta_walls in
  Array.sort compare sorted_walls;
  let avg_delta_wall =
    Array.fold_left ( +. ) 0.0 sorted_walls
    /. float_of_int (max 1 (Array.length sorted_walls))
  in
  Printf.printf
    "churn: %d ops (%d deltas, %d effective, %d queries) in %.3fs\n" n_ops
    !n_deltas !applied !n_queries churn_wall;
  Printf.printf
    "deltas: avg %.0f ops (first, incl. thaw: %d), wall p50 %.6fs p99 %.6fs\n"
    avg_delta_ops !first_delta_ops
    (percentile sorted_walls 0.50)
    (percentile sorted_walls 0.99);
  Printf.printf "rebuild of the final graph: %d ops, %.3fs wall\n" rebuild_ops
    rebuild_wall;
  Printf.printf
    "per-delta maintenance is %.0fx cheaper than a rebuild (ops), %.0fx \
     (wall) — identical answers after churn: %b\n"
    delta_rebuild_ratio
    (rebuild_wall /. max 1e-9 avg_delta_wall)
    identical_answers;
  record "edges" (Json.Int (List.length edges));
  record "budget" (Json.Int budget);
  record "space" (Json.Int (Engine.space engine));
  record "build_wall_s" (Json.Float build_wall);
  record "ops" (Json.Int n_ops);
  record "deltas" (Json.Int !n_deltas);
  record "deltas_applied" (Json.Int !applied);
  record "queries" (Json.Int !n_queries);
  record "epoch" (Json.Int (Engine.epoch engine));
  record "churn_wall_s" (Json.Float churn_wall);
  record "delta_ops_total" (Json.Int !delta_ops);
  record "delta_ops_avg" (Json.Float avg_delta_ops);
  record "first_delta_ops" (Json.Int !first_delta_ops);
  record "delta_wall_p50_s" (Json.Float (percentile sorted_walls 0.50));
  record "delta_wall_p99_s" (Json.Float (percentile sorted_walls 0.99));
  record "query_ops_avg"
    (Json.Float (float_of_int !query_ops /. float_of_int (max 1 !n_queries)));
  record "rebuild_ops" (Json.Int rebuild_ops);
  record "rebuild_wall_s" (Json.Float rebuild_wall);
  record "delta_rebuild_ratio" (Json.Float delta_rebuild_ratio);
  record "delta_rebuild_wall_ratio"
    (Json.Float (rebuild_wall /. max 1e-9 avg_delta_wall));
  record "identical_answers" (Json.Bool identical_answers)

(* ------------------------------------------------------------------ *)
(* emp-agg                                                              *)
(* ------------------------------------------------------------------ *)

let emp_agg () =
  section "emp-agg"
    "Empirical — semiring aggregates vs materialize-then-fold (matched \
     budgets)";
  (* same regime as emp-cache: 3-reach at a tight space budget keeps the
     materialized join expensive, so pushing the semiring fold through
     answering has real work to displace.  Two table budgets trace the
     space-time tradeoff: a tight partial table (most requests fall back
     to one online annotated elimination) and a complete one (every
     request is pure probes). *)
  let vertices = 400 in
  let edges = Graphs.zipf_both ~seed:151 ~vertices ~edges:4_000 ~s:1.1 in
  let q = Cq.Library.k_path 3 in
  let budget = 1_000 in
  let db = Db.create () in
  Db.add_pairs db "R" edges;
  let engine, build_wall =
    timed (fun () -> Engine.build_auto ~max_pmtds:128 q ~db ~budget)
  in
  Printf.printf "|E| = %d, budget %d, space %d (built in %.3fs)\n"
    (List.length edges) budget (Engine.space engine) build_wall;
  let requests = 800 and batch = 16 in
  let acc_schema = Engine.access_schema engine in
  let arity = Schema.arity acc_schema in
  (* each request is one multi-tuple aggregate: both paths reduce the
     same 16 access tuples to a single scalar *)
  let reqs =
    let rng = Rng.create 117 in
    let sample = Rng.zipf_sampler rng ~n:vertices ~s:1.5 in
    List.init requests (fun _ ->
        Relation.of_list acc_schema
          (List.init batch (fun _ -> Array.init arity (fun _ -> sample ()))))
  in
  let serve f =
    let ops = ref 0 in
    let out, wall =
      timed (fun () ->
          List.map
            (fun q_a ->
              let v, c = f q_a in
              ops := !ops + Cost.total c;
              v)
            reqs)
    in
    (out, !ops, wall)
  in
  let run_kind ~label k =
    let name = Stt_semiring.Semiring.name k in
    let fast, fast_ops, fast_wall =
      serve (fun q_a -> Engine.answer_agg engine k ~q_a)
    in
    let slow, slow_ops, slow_wall =
      serve (fun q_a -> Engine.agg_baseline engine k ~q_a)
    in
    let identical = List.for_all2 (fun a b -> a = b) fast slow in
    let ratio = ops_ratio ~slow:slow_ops ~fast:fast_ops in
    Printf.printf
      "  %-6s agg %9d ops %6.3fs  |  materialize-then-fold %9d ops %6.3fs  \
       -> %.1fx fewer ops, identical %b\n"
      name fast_ops fast_wall slow_ops slow_wall ratio identical;
    record
      (label ^ "_" ^ name)
      (Json.Obj
         [
           ("agg_ops", Json.Int fast_ops);
           ("agg_wall_s", Json.Float fast_wall);
           ("baseline_ops", Json.Int slow_ops);
           ("baseline_wall_s", Json.Float slow_wall);
           ("ops_ratio", Json.Float ratio);
           ("identical_answers", Json.Bool identical);
         ]);
    (identical, ratio)
  in
  let run_point ~label ~agg_budget =
    let (), agg_wall =
      timed (fun () -> Engine.enable_agg engine ~db ~budget:agg_budget)
    in
    let complete =
      List.for_all (Engine.agg_complete engine) Stt_semiring.Semiring.all
    in
    Printf.printf
      "%s tables (budget %d): %d entries, complete %b (built in %.3fs)\n"
      label agg_budget
      (Engine.agg_table_size engine)
      complete agg_wall;
    let results = List.map (run_kind ~label) Stt_semiring.Semiring.all in
    record (label ^ "_agg_budget") (Json.Int agg_budget);
    record (label ^ "_agg_table_size") (Json.Int (Engine.agg_table_size engine));
    record (label ^ "_complete") (Json.Bool complete);
    record (label ^ "_agg_build_wall_s") (Json.Float agg_wall);
    ( List.for_all fst results,
      List.fold_left (fun acc (_, r) -> min acc r) infinity results )
  in
  let tight_ok, tight_ratio = run_point ~label:"tight" ~agg_budget:20_000 in
  let full_ok, full_ratio = run_point ~label:"full" ~agg_budget:200_000 in
  let identical_answers = tight_ok && full_ok in
  (* the headline ratio is the worst kind at the complete-table point:
     the op-count twin of a wall-clock speedup, machine-independent for
     regression gating *)
  Printf.printf
    "aggregate answering is >= %.1fx cheaper than materialize-then-fold \
     (complete tables; %.1fx at the tight budget) across COUNT/SUM/MIN/MAX — \
     identical answers: %b\n"
    full_ratio tight_ratio identical_answers;
  record "edges" (Json.Int (List.length edges));
  record "budget" (Json.Int budget);
  record "space" (Json.Int (Engine.space engine));
  record "build_wall_s" (Json.Float build_wall);
  record "requests" (Json.Int requests);
  record "batch" (Json.Int batch);
  record "identical_answers" (Json.Bool identical_answers);
  record "agg_ops_ratio" (Json.Float full_ratio);
  record "tight_agg_ops_ratio" (Json.Float tight_ratio)

let abl_join () =
  section "abl-join"
    "Ablation — hash join vs sort-merge join backends (same results)";
  let edges = Graphs.zipf_both ~seed:301 ~vertices:500 ~edges:10_000 ~s:1.1 in
  let mk schema =
    Relation.of_list
      (Schema.of_list schema)
      (List.map (fun (a, b) -> [| a; b |]) edges)
  in
  let r1 = mk [ 0; 1 ] and r2 = mk [ 1; 2 ] in
  let time name f =
    let (out, snap), wall = timed (fun () -> Cost.scoped f) in
    Printf.printf "  %-12s %8d tuples  %8d counted ops  %6.2fs wall\n" name
      (Relation.cardinal out) (Cost.total snap) wall;
    record ("join " ^ name)
      (Json.Obj
         [
           ("tuples", Json.Int (Relation.cardinal out));
           ("cost", json_snapshot snap);
           ("wall_s", Json.Float wall);
         ]);
    out
  in
  let h = time "hash" (fun () -> Relation.natural_join r1 r2) in
  let m = time "sort-merge" (fun () -> Mergejoin.join r1 r2) in
  Printf.printf "  identical results: %b\n" (Relation.equal h m);
  record "identical_results" (Json.Bool (Relation.equal h m));
  ignore (time "hash ⋉" (fun () -> Relation.semijoin r1 r2));
  ignore (time "merge ⋉" (fun () -> Mergejoin.semijoin r1 r2))

let exact_curves () =
  section "curves"
    "Exact piecewise-linear combined curves (no grid artifacts)";
  List.iter
    (fun (name, q) ->
      let rules = Rule.generate q (Enum.pmtds ~max_pmtds:128 q) in
      let dc = Degree.default_dc q.Cq.cq and ac = Degree.default_ac q in
      let curve =
        Curve.combined rules ~dc ~ac ~logq:Rat.zero ~lo:Rat.zero
          ~hi:(Rat.of_int 2)
      in
      Format.printf "%s:@.  @[<v>%a@]@." name Curve.pp curve;
      record name
        (Json.List
           (List.map
              (fun (s : Curve.segment) ->
                Json.Obj
                  [
                    ("lo", json_rat s.Curve.lo);
                    ("hi", json_rat s.Curve.hi);
                    ("lo_t", json_rat s.Curve.lo_t);
                    ("hi_t", json_rat s.Curve.hi_t);
                  ])
              curve)))
    [ ("2-reachability", Cq.Library.k_path 2);
      ("3-reachability", Cq.Library.k_path 3);
      ("square", Cq.Library.square) ]

let proofs () =
  section "proofs"
    "Machine-checked paper proof corpus + automatic derivation";
  record "entries"
    (Json.List
       (List.map
          (fun (e : Paper_proofs.entry) ->
            let names = e.Paper_proofs.var_names in
            Format.printf "%-32s %a@." e.Paper_proofs.name Tradeoff.pp
              e.Paper_proofs.tradeoff;
            Format.printf "  S-side: %a@."
              (Stt_polymatroid.Proof.pp names)
              e.Paper_proofs.seq_s;
            Format.printf "  T-side: %a@."
              (Stt_polymatroid.Proof.pp names)
              e.Paper_proofs.seq_t;
            (* try to rediscover the S-side sequence automatically *)
            let rediscovered =
              if e.Paper_proofs.n <= 4 then
                match
                  Stt_polymatroid.Proof.derive ~max_depth:6
                    ~delta:e.Paper_proofs.delta_s
                    ~lambda:e.Paper_proofs.lambda_s ()
                with
                | Some seq ->
                    Format.printf "  S-side rediscovered by search: %a@."
                      (Stt_polymatroid.Proof.pp names)
                      seq;
                    Json.Bool true
                | None ->
                    Format.printf
                      "  (search did not rediscover the S-side)@.";
                    Json.Bool false
              else Json.Null
            in
            Json.Obj
              [
                ("name", Json.String e.Paper_proofs.name);
                ("tradeoff", json_tradeoff e.Paper_proofs.tradeoff);
                ("s_side_rediscovered", rediscovered);
              ])
          Paper_proofs.all))

(* ------------------------------------------------------------------ *)
(* Bechamel microbenchmarks                                             *)
(* ------------------------------------------------------------------ *)

let micro () =
  section "micro" "Bechamel wall-clock microbenchmarks (one per family)";
  let open Bechamel in
  let open Toolkit in
  let q3 = Cq.Library.k_path 3 in
  let rules3 = Rule.generate q3 (Enum.pmtds q3) in
  let dc3 = Degree.default_dc q3.Cq.cq and ac3 = Degree.default_ac q3 in
  let bench_lp =
    Test.make ~name:"tab1-jointflow-lp"
      (Staged.stage (fun () ->
           ignore
             (Jointflow.obj (List.hd rules3) ~dc:dc3 ~ac:ac3 ~logd:Rat.one
                ~logq:Rat.zero ~logs:Rat.one)))
  in
  let edges = Graphs.zipf_both ~seed:201 ~vertices:300 ~edges:3_000 ~s:1.1 in
  let db = Db.create () in
  Db.add_pairs db "R" edges;
  let engine = Engine.build_auto (Cq.Library.k_path 2) ~db ~budget:2_000 in
  let bench_engine =
    let rng = Rng.create 1 in
    Test.make ~name:"fig3-engine-answer"
      (Staged.stage (fun () ->
           ignore
             (Engine.answer_tuple engine
                [| Rng.int rng 300; Rng.int rng 300 |])))
  in
  let memberships =
    Sets.zipf_sizes ~seed:202 ~universe:2_000 ~sets:300 ~memberships:15_000
      ~s:1.2
  in
  let sd = Stt_apps.Setdisj.build ~k:2 ~memberships ~budget:10_000 in
  let bench_setdisj =
    let rng = Rng.create 2 in
    Test.make ~name:"emp-setdisj-query"
      (Staged.stage (fun () ->
           ignore
             (Stt_apps.Setdisj.disjoint sd
                [| Rng.int rng 300; Rng.int rng 300 |])))
  in
  let reach = Stt_apps.Reach.Baseline.build ~k:3 edges ~budget:10_000 in
  let bench_reach =
    let rng = Rng.create 3 in
    Test.make ~name:"emp-reach-baseline-query"
      (Staged.stage (fun () ->
           ignore
             (Stt_apps.Reach.Baseline.query reach (Rng.int rng 300)
                (Rng.int rng 300))))
  in
  let inst = Stt_apps.Hierarchical.generate ~seed:203 ~posts:200 ~size:3_000 in
  let hier = Stt_apps.Hierarchical.Adapted.build inst ~epsilon:0.5 in
  let bench_hier =
    let rng = Rng.create 4 in
    Test.make ~name:"fig5-hierarchical-query"
      (Staged.stage (fun () ->
           ignore
             (Stt_apps.Hierarchical.Adapted.query hier
                (Array.init 4 (fun _ -> Rng.int rng 50)))))
  in
  let run_one test =
    let cfg =
      Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:(Some 100) ()
    in
    let raw = Benchmark.all cfg [ Instance.monotonic_clock ] test in
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
    in
    let results = Analyze.all ols Instance.monotonic_clock raw in
    Hashtbl.iter
      (fun name result ->
        match Analyze.OLS.estimates result with
        | Some [ est ] ->
            Printf.printf "  %-28s %14.1f ns/run\n" name est;
            record name (Json.Obj [ ("ns_per_run", Json.Float est) ])
        | _ -> Printf.printf "  %-28s (no estimate)\n" name)
      results
  in
  List.iter run_one
    [ bench_lp; bench_engine; bench_setdisj; bench_reach; bench_hier ]

(* ------------------------------------------------------------------ *)
(* driver                                                               *)
(* ------------------------------------------------------------------ *)

(* ------------------------------------------------------------------ *)
(* emp-factor                                                           *)
(* ------------------------------------------------------------------ *)

module Fconfig = Stt_factorized.Config

let emp_factor () =
  section "emp-factor"
    "Empirical — factorized d-representations: more materialization per \
     stored-singleton budget";
  (* 3-reach on a hub-dense Zipf graph: many sources share identical
     reachable sets, exactly the suffix sharing a d-representation
     stores once — so the same stored-singleton budget funds an
     amplified split structure that materializes strictly more *)
  let saved_mode = Fconfig.mode () in
  Fun.protect ~finally:(fun () -> Fconfig.set_mode saved_mode) @@ fun () ->
  let vertices = 300 in
  let edges = Graphs.zipf_both ~seed:131 ~vertices ~edges:6_000 ~s:1.3 in
  let q = Cq.Library.k_path 3 in
  let budget = 800 in
  let db = Db.create () in
  Db.add_pairs db "R" edges;
  let build mode =
    Fconfig.set_mode mode;
    timed (fun () -> Engine.build_auto ~max_pmtds:128 q ~db ~budget)
  in
  let flat, flat_wall = build Fconfig.Off in
  let fact, fact_wall = build Fconfig.Auto in
  let flat_rows = Engine.materialized_rows flat in
  let fact_rows = Engine.materialized_rows fact in
  let ratio = compression_ratio ~rows:fact_rows ~size:(Engine.space fact) in
  Printf.printf
    "flat:       space %6d singletons = %6d rows              (built in \
     %.3fs)\n"
    (Engine.space flat) flat_rows flat_wall;
  Printf.printf
    "factorized: space %6d singletons = %6d rows (%d d-reps)  (built in \
     %.3fs)\n"
    (Engine.space fact) fact_rows
    (Engine.factorized_views fact)
    fact_wall;
  Printf.printf
    "same budget %d: %.2fx rows per stored singleton, %+d rows more \
     materialized\n"
    budget ratio (fact_rows - flat_rows);
  (* serve path at equal budget, no cache: the factorized engine's extra
     materialization turns delegated online joins into stored-view
     probes *)
  let requests = 2_000 in
  let batch = 16 in
  let acc_schema = Engine.access_schema fact in
  let arity = Schema.arity acc_schema in
  let reqs =
    let rng = Rng.create 117 in
    let sample = Rng.zipf_sampler rng ~n:vertices ~s:1.5 in
    List.init requests (fun _ ->
        Relation.singleton acc_schema (Array.init arity (fun _ -> sample ())))
  in
  let serve engine =
    let ops = ref 0 and answers = ref [] in
    let (), wall =
      timed (fun () ->
          List.iter
            (fun group ->
              List.iter
                (fun (r, c) ->
                  ops := !ops + Cost.total c;
                  answers := r :: !answers)
                (Engine.answer_batch engine group))
            (chunks batch reqs))
    in
    (List.rev !answers, !ops, wall)
  in
  let ans_flat, ops_flat, wall_flat = serve flat in
  let ans_fact, ops_fact, wall_fact = serve fact in
  let serve_identical = identical_relations ans_flat ans_fact in
  let serve_ops_ratio = ops_ratio ~slow:ops_flat ~fast:ops_fact in
  let throughput w = float_of_int requests /. w in
  Printf.printf
    "serve zipf(1.5): flat %9.0f answers/sec %9d ops | factorized %9.0f \
     answers/sec %9d ops -> %.2fx fewer ops, identical answers: %b\n"
    (throughput wall_flat) ops_flat (throughput wall_fact) ops_fact
    serve_ops_ratio serve_identical;
  (* answer cache at a fixed budget: compressed values make the same
     budget hold more entries *)
  let cache_budget = 2_000 in
  let cache_run mode =
    Fconfig.set_mode mode;
    Engine.attach_cache fact ~budget:cache_budget;
    let ans, ops, wall = serve fact in
    let s =
      match Engine.cache_stats fact with
      | Some s -> s
      | None -> assert false
    in
    Engine.attach_cache fact ~budget:0;
    (ans, ops, wall, s)
  in
  let ans_cflat, _, _, s_cflat = cache_run Fconfig.Off in
  let ans_cfact, _, _, s_cfact = cache_run Fconfig.Auto in
  let hit_rate (s : Stt_cache.Cache.stats) =
    let lookups = s.Stt_cache.Cache.hits + s.misses in
    if lookups = 0 then 0.0 else float_of_int s.hits /. float_of_int lookups
  in
  let cache_identical =
    identical_relations ans_flat ans_cflat
    && identical_relations ans_flat ans_cfact
  in
  let entries_ratio =
    float_of_int s_cfact.entries /. float_of_int (max 1 s_cflat.entries)
  in
  Printf.printf
    "cache (%d): flat values %5d entries hit rate %.3f | factorized values \
     %5d entries (%d compressed) hit rate %.3f -> %.2fx capacity\n"
    cache_budget s_cflat.entries (hit_rate s_cflat) s_cfact.entries
    s_cfact.factorized (hit_rate s_cfact) entries_ratio;
  let identical_answers = serve_identical && cache_identical in
  record "edges" (Json.Int (List.length edges));
  record "budget" (Json.Int budget);
  record "flat_space" (Json.Int (Engine.space flat));
  record "flat_rows" (Json.Int flat_rows);
  record "flat_build_wall_s" (Json.Float flat_wall);
  record "fact_space" (Json.Int (Engine.space fact));
  record "fact_rows" (Json.Int fact_rows);
  record "fact_views" (Json.Int (Engine.factorized_views fact));
  record "fact_build_wall_s" (Json.Float fact_wall);
  record "compression_ratio" (Json.Float ratio);
  record "extra_rows" (Json.Int (fact_rows - flat_rows));
  record "requests" (Json.Int requests);
  record "batch" (Json.Int batch);
  record "serve_ops_flat" (Json.Int ops_flat);
  record "serve_ops_fact" (Json.Int ops_fact);
  record "serve_ops_ratio" (Json.Float serve_ops_ratio);
  record "answers_per_sec" (Json.Float (throughput wall_fact));
  record "flat_answers_per_sec" (Json.Float (throughput wall_flat));
  record "cache_budget" (Json.Int cache_budget);
  record "cache_entries_flat" (Json.Int s_cflat.entries);
  record "cache_entries_fact" (Json.Int s_cfact.entries);
  record "cache_factorized_entries" (Json.Int s_cfact.factorized);
  record "cache_hit_rate_flat" (Json.Float (hit_rate s_cflat));
  record "cache_hit_rate_fact" (Json.Float (hit_rate s_cfact));
  record "cache_entries_ratio" (Json.Float entries_ratio);
  record "identical_answers" (Json.Bool identical_answers)

let experiments =
  [
    ("fig1", fig1);
    ("fig2", fig2);
    ("tab1", tab1);
    ("fig3a", fig3 ~k:3 ~steps:8);
    ("fig3b", fig3 ~k:4 ~steps:4);
    ("fig4", fig4);
    ("fig5", fig5);
    ("ex62", ex62);
    ("ex63", ex63);
    ("emp-setdisj", emp_setdisj);
    ("emp-reach", emp_reach);
    ("emp-hier", emp_hier);
    ("emp-square", emp_square);
    ("emp-serve", emp_serve);
    ("emp-cache", emp_cache);
    ("emp-churn", emp_churn);
    ("emp-agg", emp_agg);
    ("emp-factor", emp_factor);
    ("abl-join", abl_join);
    ("curves", exact_curves);
    ("proofs", proofs);
    ("micro", micro);
  ]

(* Run one experiment under observability, then write its artifact:
   recorded numbers plus the full trace of the run. *)
let run_experiment (id, f) =
  art := [];
  Obs.set_enabled true;
  Obs.reset ();
  let (), wall =
    timed (fun () -> Fun.protect ~finally:(fun () -> Obs.set_enabled false) f)
  in
  let doc =
    Json.Obj
      [
        ("schema", Json.String "stt-bench/1");
        ("experiment", Json.String id);
        ("wall_s", Json.Float wall);
        ("data", Json.Obj (List.rev !art));
        ("trace", Obs.trace ());
      ]
  in
  let path = Filename.concat !artifact_dir ("BENCH_" ^ id ^ ".json") in
  Json.to_file path doc;
  Printf.printf "artifact: %s\n" path

let () =
  (* --out <dir> redirects the BENCH_<id>.json artifacts (default: cwd) *)
  let rec strip_out acc = function
    | "--out" :: dir :: rest ->
        if not (Sys.file_exists dir && Sys.is_directory dir) then (
          Printf.eprintf "--out %s: not a directory\n" dir;
          exit 1);
        artifact_dir := dir;
        strip_out acc rest
    | [ "--out" ] ->
        Printf.eprintf "--out requires a directory argument\n";
        exit 1
    | x :: rest -> strip_out (x :: acc) rest
    | [] -> List.rev acc
  in
  match strip_out [] (List.tl (Array.to_list Sys.argv)) with
  | [ "--list" ] -> List.iter (fun (id, _) -> print_endline id) experiments
  | [] -> List.iter run_experiment experiments
  | ids ->
      List.iter
        (fun id ->
          match List.assoc_opt id experiments with
          | Some f -> run_experiment (id, f)
          | None ->
              Printf.eprintf "unknown experiment %s (try --list)\n" id;
              exit 1)
        ids
