(* Perf-trajectory collector: aggregates BENCH_*.json artifacts across
   commits into a committed trajectory file plus a rendered markdown
   page, and gates CI on regressions relative to the recorded history
   (same machine only — wall-clock numbers are not comparable across
   hosts) instead of fixed baselines.

   Collect a run:   dune exec bench/history.exe -- collect [--dir D]
   Re-render page:  dune exec bench/history.exe -- render
   Gate a run:      dune exec bench/history.exe -- check [--dir D]
                                                         [--tolerance 0.2]

   The trajectory file (bench/history/trajectory.json, schema
   "stt-trajectory/1") holds one entry per (commit, machine,
   experiment); collecting the same triple again replaces the old
   entry, so re-runs refresh rather than duplicate.  `check` compares
   the gated throughput metrics of the current artifacts against the
   median of the machine's recorded history and fails on a drop beyond
   the tolerance; a machine with no history yet warns and passes
   (bootstrap). *)

module Json = Stt_obs.Json

let trajectory_file = "bench/history/trajectory.json"
let page_file = "bench/history/TRAJECTORY.md"

(* ------------------------------------------------------------------ *)
(* metric extraction                                                    *)
(* ------------------------------------------------------------------ *)

(* Which numbers of each artifact belong in the trajectory.  Paths are
   dot-separated routes under the artifact root; [gated] metrics are
   throughputs (higher is better) checked by `check`. *)
type metric = { name : string; path : string; gated : bool }

let m ?(gated = false) name path = { name; path; gated }

let metrics_of_experiment = function
  | "emp-net" ->
      [
        m ~gated:true "answers_per_sec" "data.answers_per_sec";
        m "p50_us" "data.p50_us";
        m "p99_us" "data.p99_us";
        m "connections" "data.connections";
        m "backend_speedup" "data.backend_speedup";
      ]
  | "emp-shard" ->
      [
        m ~gated:true "answers_per_sec" "data.answers_per_sec";
        m "p50_us" "data.p50_us";
        m "p99_us" "data.p99_us";
        m "shards" "data.shards";
        m "host_cpus" "data.host_cpus";
        m "retried_tuples" "data.retried_tuples";
        (* vs the 1-shard BENCH_emp-net baseline; only meaningful when
           host_cpus can actually run the fleet in parallel *)
        m "backend_speedup" "data.backend_speedup";
      ]
  | "emp-serve" ->
      [
        m ~gated:true "answers_per_sec" "data.batched.answers_per_sec";
        m "single_answers_per_sec" "data.single.answers_per_sec";
        m "build_wall_s" "data.build_wall_1_s";
        m "snapshot_load_wall_s" "data.snapshot_load_wall_s";
      ]
  | "emp-cache" ->
      [
        m "answers_per_sec" "data.zipf_large.answers_per_sec";
        m "skew_speedup" "data.skew_speedup";
        m "skew_ops_ratio" "data.skew_ops_ratio";
      ]
  | "emp-churn" ->
      [
        m "delta_rebuild_ratio" "data.delta_rebuild_ratio";
        m "delta_wall_p50_s" "data.delta_wall_p50_s";
      ]
  | "emp-agg" ->
      [
        m "agg_ops_ratio" "data.agg_ops_ratio";
        m "tight_agg_ops_ratio" "data.tight_agg_ops_ratio";
        m "full_agg_wall_s" "data.full_count.agg_wall_s";
      ]
  | "agg-net" ->
      [
        m ~gated:true "aggs_per_sec" "data.aggs_per_sec";
        m "p50_us" "data.p50_us";
        m "p99_us" "data.p99_us";
        m "shards" "data.shards";
      ]
  | "emp-factor" ->
      [
        m "compression_ratio" "data.compression_ratio";
        m "extra_rows" "data.extra_rows";
        m "fact_rows" "data.fact_rows";
        m "serve_ops_ratio" "data.serve_ops_ratio";
        m "answers_per_sec" "data.answers_per_sec";
      ]
  | _ -> [ m "wall_s" "wall_s" ]

(* strings worth carrying along for the page (never gated) *)
let tags_of_experiment = function
  | "emp-net" | "emp-shard" -> [ ("io_backend", "data.io_backend") ]
  | "agg-net" -> [ ("agg", "data.agg") ]
  | _ -> []

let lookup_path doc path =
  List.fold_left
    (fun acc key -> Option.bind acc (Json.member key))
    (Some doc)
    (String.split_on_char '.' path)

let number = function
  | Some (Json.Float f) -> Some f
  | Some (Json.Int i) -> Some (float_of_int i)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* environment                                                          *)
(* ------------------------------------------------------------------ *)

let machine_id () =
  match Sys.getenv_opt "STT_BENCH_MACHINE" with
  | Some m when m <> "" -> m
  | _ -> (
      match (Sys.getenv_opt "GITHUB_ACTIONS", Sys.getenv_opt "RUNNER_OS") with
      | Some "true", Some os -> "github-" ^ os
      | _ -> Unix.gethostname ())

let commit_id () =
  match Sys.getenv_opt "GITHUB_SHA" with
  | Some sha when String.length sha >= 7 -> String.sub sha 0 7
  | _ -> (
      let ic = Unix.open_process_in "git rev-parse --short HEAD 2>/dev/null" in
      let line = try input_line ic with End_of_file -> "" in
      match (Unix.close_process_in ic, line) with
      | Unix.WEXITED 0, l when l <> "" -> l
      | _ -> "local")

let timestamp () =
  let tm = Unix.gmtime (Unix.gettimeofday ()) in
  Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02dZ" (tm.Unix.tm_year + 1900)
    (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min
    tm.Unix.tm_sec

(* ------------------------------------------------------------------ *)
(* trajectory file                                                      *)
(* ------------------------------------------------------------------ *)

type entry = {
  commit : string;
  machine : string;
  time : string;
  experiment : string;
  metrics : (string * float) list;
  tags : (string * string) list;
}

let entry_of_json j =
  let str k = match Json.member k j with Some (Json.String s) -> s | _ -> "" in
  let pairs k f =
    match Json.member k j with
    | Some (Json.Obj kvs) -> List.filter_map (fun (n, v) -> f n v) kvs
    | _ -> []
  in
  {
    commit = str "commit";
    machine = str "machine";
    time = str "time";
    experiment = str "experiment";
    metrics =
      pairs "metrics" (fun n v ->
          Option.map (fun f -> (n, f)) (number (Some v)));
    tags =
      pairs "tags" (fun n v ->
          match v with Json.String s -> Some (n, s) | _ -> None);
  }

let json_of_entry e =
  Json.Obj
    [
      ("commit", Json.String e.commit);
      ("machine", Json.String e.machine);
      ("time", Json.String e.time);
      ("experiment", Json.String e.experiment);
      ("metrics", Json.Obj (List.map (fun (n, v) -> (n, Json.Float v)) e.metrics));
      ("tags", Json.Obj (List.map (fun (n, v) -> (n, Json.String v)) e.tags));
    ]

let read_file path = In_channel.with_open_text path In_channel.input_all

let load_trajectory () =
  if not (Sys.file_exists trajectory_file) then []
  else
    match Json.of_string (read_file trajectory_file) with
    | Error e -> failwith (trajectory_file ^ ": " ^ e)
    | Ok doc -> (
        match Json.member "entries" doc with
        | Some (Json.List l) -> List.map entry_of_json l
        | _ -> failwith (trajectory_file ^ ": no entries list"))

let rec mkdir_p dir =
  if dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let save_trajectory entries =
  mkdir_p (Filename.dirname trajectory_file);
  Json.to_file trajectory_file
    (Json.Obj
       [
         ("schema", Json.String "stt-trajectory/1");
         ("entries", Json.List (List.map json_of_entry entries));
       ])

(* ------------------------------------------------------------------ *)
(* artifact scanning                                                    *)
(* ------------------------------------------------------------------ *)

let scan_artifacts dir =
  Sys.readdir dir |> Array.to_list |> List.sort compare
  |> List.filter_map (fun f ->
         if
           String.length f > 11
           && String.sub f 0 6 = "BENCH_"
           && Filename.check_suffix f ".json"
         then
           let path = Filename.concat dir f in
           match Json.of_string (read_file path) with
           | Error e ->
               Printf.eprintf "warning: %s: %s (skipped)\n" path e;
               None
           | Ok doc -> (
               match Json.member "experiment" doc with
               | Some (Json.String id) -> Some (id, doc)
               | _ ->
                   Printf.eprintf "warning: %s: no experiment id (skipped)\n"
                     path;
                   None)
         else None)

let harvest (id, doc) ~commit ~machine ~time =
  let metrics =
    List.filter_map
      (fun mt ->
        Option.map (fun v -> (mt.name, v)) (number (lookup_path doc mt.path)))
      (metrics_of_experiment id)
  in
  let tags =
    List.filter_map
      (fun (name, path) ->
        match lookup_path doc path with
        | Some (Json.String s) -> Some (name, s)
        | _ -> None)
      (tags_of_experiment id)
  in
  { commit; machine; time; experiment = id; metrics; tags }

(* ------------------------------------------------------------------ *)
(* markdown page                                                        *)
(* ------------------------------------------------------------------ *)

let render_page entries =
  let buf = Buffer.create 4096 in
  let out fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  out "# Performance trajectory\n\n";
  out
    "Regenerated by `dune exec bench/history.exe -- render` from\n\
     [`trajectory.json`](trajectory.json); one row per collected run,\n\
     newest last.  Wall-clock numbers are only comparable within a\n\
     machine; the CI gate (`history check`) therefore compares each\n\
     run against the median of its own machine's history.\n";
  let experiments =
    List.sort_uniq compare (List.map (fun e -> e.experiment) entries)
  in
  List.iter
    (fun exp ->
      out "\n## %s\n" exp;
      let of_exp = List.filter (fun e -> e.experiment = exp) entries in
      let machines =
        List.sort_uniq compare (List.map (fun e -> e.machine) of_exp)
      in
      List.iter
        (fun mach ->
          let rows = List.filter (fun e -> e.machine = mach) of_exp in
          let cols =
            List.sort_uniq compare
              (List.concat_map
                 (fun e ->
                   List.map fst e.metrics @ List.map fst e.tags)
                 rows)
          in
          out "\n### machine `%s`\n\n" mach;
          out "| commit | time |%s\n"
            (String.concat ""
               (List.map (fun c -> Printf.sprintf " %s |" c) cols));
          out "|---|---|%s\n"
            (String.concat "" (List.map (fun _ -> "---|") cols));
          List.iter
            (fun e ->
              out "| `%s` | %s |" e.commit e.time;
              List.iter
                (fun c ->
                  match List.assoc_opt c e.metrics with
                  | Some v ->
                      if Float.is_integer v && Float.abs v < 1e15 then
                        out " %.0f |" v
                      else out " %.4g |" v
                  | None -> (
                      match List.assoc_opt c e.tags with
                      | Some s -> out " %s |" s
                      | None -> out " — |"))
                cols;
              out "\n")
            rows)
        machines)
    experiments;
  Out_channel.with_open_text page_file (fun oc ->
      Out_channel.output_string oc (Buffer.contents buf))

(* ------------------------------------------------------------------ *)
(* commands                                                             *)
(* ------------------------------------------------------------------ *)

let collect ~dir =
  let commit = commit_id () and machine = machine_id () in
  let time = timestamp () in
  let fresh =
    List.map (harvest ~commit ~machine ~time) (scan_artifacts dir)
  in
  if fresh = [] then begin
    Printf.eprintf "history collect: no BENCH_*.json artifacts in %s\n" dir;
    exit 1
  end;
  let old = load_trajectory () in
  let replaced (e : entry) =
    List.exists
      (fun f ->
        f.commit = e.commit && f.machine = e.machine
        && f.experiment = e.experiment)
      fresh
  in
  let entries = List.filter (fun e -> not (replaced e)) old @ fresh in
  save_trajectory entries;
  render_page entries;
  List.iter
    (fun e ->
      Printf.printf "collected %-12s %s @ %s (%d metrics)\n" e.experiment
        e.commit e.machine (List.length e.metrics))
    fresh;
  Printf.printf "trajectory: %s (%d entries)\npage: %s\n" trajectory_file
    (List.length entries) page_file

let render () =
  let entries = load_trajectory () in
  render_page entries;
  Printf.printf "page: %s (%d entries)\n" page_file (List.length entries)

let median values =
  let sorted = List.sort compare values in
  let n = List.length sorted in
  if n = 0 then nan
  else
    let a = Array.of_list sorted in
    if n mod 2 = 1 then a.(n / 2) else (a.((n / 2) - 1) +. a.(n / 2)) /. 2.0

let check ~dir ~tolerance =
  let machine = machine_id () in
  let history = load_trajectory () in
  let current =
    List.map
      (harvest ~commit:"current" ~machine ~time:(timestamp ()))
      (scan_artifacts dir)
  in
  if current = [] then begin
    Printf.eprintf "history check: no BENCH_*.json artifacts in %s\n" dir;
    exit 1
  end;
  let failures = ref 0 and gates = ref 0 in
  List.iter
    (fun e ->
      List.iter
        (fun mt ->
          if mt.gated then
            match List.assoc_opt mt.name e.metrics with
            | None -> ()
            | Some value ->
                let past =
                  List.filter_map
                    (fun h ->
                      if
                        h.experiment = e.experiment && h.machine = machine
                      then List.assoc_opt mt.name h.metrics
                      else None)
                    history
                in
                if past = [] then
                  Printf.printf
                    "%-12s %-18s %12.0f  (no %s history — bootstrap, \
                     skipped)\n"
                    e.experiment mt.name value machine
                else begin
                  incr gates;
                  let ref_v = median past in
                  let floor_v = ref_v *. (1.0 -. tolerance) in
                  let ok = value >= floor_v in
                  Printf.printf
                    "%-12s %-18s %12.0f  vs median %12.0f (floor %12.0f, \
                     %d runs)  %s\n"
                    e.experiment mt.name value ref_v floor_v
                    (List.length past)
                    (if ok then "ok" else "REGRESSION");
                  if not ok then incr failures
                end)
        (metrics_of_experiment e.experiment))
    current;
  if !failures > 0 then begin
    Printf.eprintf
      "history check: %d gated metric(s) regressed more than %.0f%% vs \
       trajectory history\n"
      !failures (tolerance *. 100.0);
    exit 1
  end;
  Printf.printf "history check: %d gate(s) passed (tolerance %.0f%%)\n" !gates
    (tolerance *. 100.0)

let () =
  let usage () =
    prerr_endline
      "usage: history.exe (collect|render|check) [--dir DIR] [--tolerance T]";
    exit 2
  in
  let dir = ref "." and tolerance = ref 0.2 and cmd = ref None in
  let rec parse = function
    | [] -> ()
    | "--dir" :: d :: rest ->
        dir := d;
        parse rest
    | "--tolerance" :: t :: rest ->
        (match float_of_string_opt t with
        | Some f when f >= 0.0 && f < 1.0 -> tolerance := f
        | _ -> usage ());
        parse rest
    | c :: rest when !cmd = None && String.length c > 0 && c.[0] <> '-' ->
        cmd := Some c;
        parse rest
    | _ -> usage ()
  in
  parse (List.tl (Array.to_list Sys.argv));
  match !cmd with
  | Some "collect" -> collect ~dir:!dir
  | Some "render" -> render ()
  | Some "check" -> check ~dir:!dir ~tolerance:!tolerance
  | _ -> usage ()
